use crate::calib::{MAX_LEGALIZE_DISPLACEMENT_CPP, PLACEMENT_ITERATIONS};
use crate::floorplan::Floorplan;
use crate::powerplan::PowerPlan;
use ffet_cells::Library;
use ffet_geom::Rng64;
use ffet_geom::{Nm, Orientation, Point, Rect};
use ffet_netlist::Netlist;

/// A legalized placement of every netlist instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Lower-left origin per instance (indexed by `InstId`), nm.
    pub origins: Vec<Point>,
    /// Row orientation per instance.
    pub orients: Vec<Orientation>,
    /// Cells that could not be legalized within the displacement bound —
    /// the "placement violations between standard cells and Power Tap
    /// Cells" that cap utilization in the paper's Fig. 8.
    pub violations: u32,
    /// Half-perimeter wirelength estimate after legalization, nm.
    pub hpwl_nm: i64,
    /// Port positions on the die boundary (indexed by `PortId`), nm.
    pub port_positions: Vec<Point>,
}

impl Placement {
    /// Center of an instance given its library cell width.
    #[must_use]
    pub fn center(&self, inst: usize, width_nm: Nm, row_height: Nm) -> Point {
        Point::new(
            self.origins[inst].x + width_nm / 2,
            self.origins[inst].y + row_height / 2,
        )
    }
}

/// One free interval of sites in a row (between Power Tap Cells):
/// `cursor` is the next free site, `end` one past the last.
#[derive(Debug, Clone)]
struct Segment {
    end: i64,
    cursor: i64,
}

/// Places the netlist: seeded initial spread, force-directed refinement
/// with row-projection spreading, then Tetris-style legalization that
/// respects Power Tap Cell blockages and the bounded-displacement rule.
#[must_use]
pub fn place(
    netlist: &Netlist,
    library: &Library,
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    seed: u64,
) -> Placement {
    let tech = library.tech();
    let cpp = tech.cpp() as f64;
    let row_h = tech.cell_height();
    let n = netlist.instances().len();
    let die = floorplan.die;
    let widths: Vec<i64> = netlist
        .instances()
        .iter()
        .map(|inst| library.cell(inst.cell).width_cpp)
        .collect();

    // IO planning: ports spread evenly around the die boundary.
    let port_positions = plan_ports(netlist, die);

    // ---- Initial placement: connectivity-driven serpentine fill ----
    // A Cuthill–McKee-style BFS over the cell adjacency graph produces an
    // ordering in which connected cells are close; mapping that order
    // serpentine onto the rows gives the force-directed refinement a
    // structured starting point instead of a random one.
    let mut rng = Rng64::new(seed);
    let order = connectivity_order(netlist, &mut rng);
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    {
        let sites_per_row = floorplan.rows.first().map_or(1, |r| r.sites) as f64;
        let mut cur_x = 0.0f64;
        let mut cur_row = 0usize;
        let fill = floorplan.target_utilization.max(0.05);
        for &i in &order {
            let w = widths[i] as f64 / fill;
            if cur_x + w > sites_per_row {
                cur_x = 0.0;
                cur_row = (cur_row + 1) % floorplan.rows.len().max(1);
            }
            // Serpentine: odd rows fill right-to-left so the order stays
            // contiguous across row boundaries.
            let along = if cur_row.is_multiple_of(2) {
                cur_x + w / 2.0
            } else {
                sites_per_row - cur_x - w / 2.0
            };
            x[i] = floorplan.rows[cur_row].x as f64 + along * cpp;
            y[i] = floorplan.rows[cur_row].y as f64 + 0.5 * row_h as f64;
            cur_x += w;
        }
    }

    // ---- SimPL-style quadratic refinement ----
    // Each outer iteration: solve the B2B quadratic program per axis
    // (wirelength lower bound), then compute a density-feasible spread of
    // the solution (upper bound) and use it as the anchor set of the next
    // solve, with geometrically increasing anchor weight.
    let qp_nets = crate::qp::QpNets::build(netlist, &port_positions);
    let fixed_mask: Vec<bool> = netlist.instances().iter().map(|i| i.fixed).collect();
    if !qp_nets.is_empty() {
        let mut anchor_x = x.clone();
        let mut anchor_y = y.clone();
        for outer in 0..PLACEMENT_ITERATIONS {
            let anchor_w = 1e-5 * (1.55f64).powi(outer as i32);
            crate::qp::solve_axis(
                &qp_nets,
                ffet_geom::Axis::Horizontal,
                &mut x,
                &anchor_x,
                anchor_w,
                &fixed_mask,
            );
            crate::qp::solve_axis(
                &qp_nets,
                ffet_geom::Axis::Vertical,
                &mut y,
                &anchor_y,
                anchor_w,
                &fixed_mask,
            );
            anchor_x.copy_from_slice(&x);
            anchor_y.copy_from_slice(&y);
            spread(
                floorplan,
                &widths,
                &mut anchor_x,
                &mut anchor_y,
                cpp,
                row_h,
                1.0,
            );
        }
        // Hand the legalizer the density-feasible upper-bound positions.
        x = anchor_x;
        y = anchor_y;
    }
    let _ = &order;

    // ---- Legalization ----
    legalize(
        netlist,
        library,
        floorplan,
        powerplan,
        &x,
        &y,
        &widths,
        port_positions,
    )
}

/// BFS (Cuthill–McKee-like) ordering of the instances over the net
/// adjacency graph. Clock nets and very-high-fanout nets are skipped (they
/// connect everything and carry no locality information).
fn connectivity_order(netlist: &Netlist, rng: &mut Rng64) -> Vec<usize> {
    let n = netlist.instances().len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in netlist.nets() {
        if net.is_clock || net.degree() > 24 {
            continue;
        }
        let mut members: Vec<u32> = Vec::with_capacity(net.degree());
        if let Some(d) = net.driver {
            members.push(d.inst.0);
        }
        for s in &net.sinks {
            members.push(s.inst.0);
        }
        // Star connectivity around the first member keeps the graph sparse.
        for &m in &members[1..] {
            if m != members[0] {
                adj[members[0] as usize].push(m);
                adj[m as usize].push(members[0]);
            }
        }
    }
    let mut seeds: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut seeds);
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for seed in seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut next: Vec<u32> = adj[u]
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            next.sort_unstable();
            next.dedup();
            // Lower-degree neighbours first (classic Cuthill–McKee).
            next.sort_by_key(|&v| adj[v as usize].len());
            for v in next {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v as usize);
                }
            }
        }
    }
    order
}

/// Density projection: bins cells into rows by y order, then spreads each
/// row's cells along x in sorted order proportionally to capacity.
fn spread(
    floorplan: &Floorplan,
    widths: &[i64],
    x: &mut [f64],
    y: &mut [f64],
    cpp: f64,
    row_h: Nm,
    strength: f64,
) {
    let n_rows = floorplan.rows.len().max(1);
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| y[a].total_cmp(&y[b]).then(x[a].total_cmp(&x[b])));
    // Allocate cells to rows with equal total width per row.
    let total_w: i64 = widths.iter().sum();
    let per_row = total_w as f64 / n_rows as f64;
    let mut row = 0usize;
    let mut acc = 0.0;
    let mut row_members: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
    for &i in &idx {
        if acc > per_row && row + 1 < n_rows {
            row += 1;
            acc = 0.0;
        }
        acc += widths[i] as f64;
        row_members[row].push(i);
    }
    for (r, members) in row_members.iter_mut().enumerate() {
        members.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
        let row_sites = floorplan.rows[r].sites as f64;
        let used: f64 = members.iter().map(|&i| widths[i] as f64).sum();
        // Keep ~4% of the row free: Power Tap Cells occupy ~3% of the
        // sites and the legalizer needs slack to pack around them.
        let usable = row_sites * 0.96;
        let scale = if used > 0.0 {
            (usable / used).min(1.0 / floorplan.target_utilization.max(0.05))
        } else {
            1.0
        };
        let mut cursor = 0.0;
        // Center the packed row.
        let span = used * scale;
        let offset = ((row_sites - span) / 2.0).max(0.0);
        for &i in members.iter() {
            let w = widths[i] as f64 * scale;
            let target = floorplan.rows[r].x as f64 + (offset + cursor + w / 2.0) * cpp;
            // Blend: keep attraction but stay feasible; `strength` ramps
            // the projection in over the iterations.
            x[i] = (1.0 - strength) * x[i] + strength * target;
            y[i] = floorplan.rows[r].y as f64 + 0.5 * row_h as f64;
            cursor += w;
        }
    }
}

/// Tetris legalization over tap-free segments, with bounded displacement.
#[allow(clippy::too_many_arguments)]
fn legalize(
    netlist: &Netlist,
    library: &Library,
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    x: &[f64],
    y: &[f64],
    widths: &[i64],
    port_positions: Vec<Point>,
) -> Placement {
    let tech = library.tech();
    let cpp = tech.cpp();
    let row_h = tech.cell_height();
    let n = x.len();
    let n_rows = floorplan.rows.len();

    // Build free segments per row from tap blockages.
    let mut segments: Vec<Vec<Segment>> = Vec::with_capacity(n_rows);
    for (r, row) in floorplan.rows.iter().enumerate() {
        let mut blocked: Vec<(i64, i64)> = powerplan
            .taps
            .iter()
            .filter(|t| t.row == r)
            .map(|t| (t.site, t.site + t.width_sites))
            .collect();
        blocked.sort_unstable();
        // Sites are indexed in absolute CPP units (row.x is CPP-aligned).
        let base = row.x / cpp;
        let row_end = base + row.sites;
        let mut segs = Vec::new();
        let mut start = base;
        for (b0, b1) in blocked {
            if b0 > start {
                segs.push(Segment {
                    end: b0.min(row_end),
                    cursor: start,
                });
            }
            start = start.max(b1);
        }
        if start < row_end {
            segs.push(Segment {
                end: row_end,
                cursor: start,
            });
        }
        segments.push(segs);
    }

    // Process cells in x order (Tetris sweep).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let mut origins = vec![Point::ORIGIN; n];
    let mut orients = vec![Orientation::North; n];
    let mut violations = 0u32;

    for &i in &order {
        let w = widths[i];
        let want_site = (x[i] / cpp as f64).round() as i64 - w / 2;
        let row0_y = floorplan.rows.first().map_or(0, |r| r.y) as f64;
        let want_row =
            (((y[i] - row0_y) / row_h as f64 - 0.5).round() as i64).clamp(0, n_rows as i64 - 1);

        let mut best: Option<(i64, usize, usize)> = None; // (cost, row, seg)
        for dr in 0..n_rows as i64 {
            for cand in [want_row - dr, want_row + dr] {
                if cand < 0 || cand >= n_rows as i64 || (dr > 0 && cand == want_row) {
                    continue;
                }
                let r = cand as usize;
                let row_cost = dr * (row_h / cpp).max(1) * 2;
                if let Some((c0, _, _)) = best {
                    if row_cost >= c0 {
                        continue;
                    }
                }
                for (si, seg) in segments[r].iter().enumerate() {
                    if seg.end - seg.cursor < w {
                        continue;
                    }
                    let site = want_site.clamp(seg.cursor, seg.end - w);
                    let cost = (site - want_site).abs() + row_cost;
                    if best.is_none_or(|(c0, _, _)| cost < c0) {
                        best = Some((cost, r, si));
                    }
                }
            }
            if let Some((c, _, _)) = best {
                // Rows farther out cost at least (dr+1) × row step even with
                // zero displacement; stop once the incumbent beats that.
                if c <= (dr + 1) * (row_h / cpp).max(1) * 2 {
                    break;
                }
            }
        }

        match best {
            Some((cost, r, si)) => {
                ffet_obs::observe("place.displacement_cpp", cost as f64);
                if cost > MAX_LEGALIZE_DISPLACEMENT_CPP {
                    violations += 1;
                    ffet_obs::counter_add("place.legalize_violations", 1);
                }
                let seg = &mut segments[r][si];
                let site = want_site.clamp(seg.cursor, seg.end - w);
                seg.cursor = site + w;
                origins[i] = Point::new(site * cpp, floorplan.rows[r].y);
                orients[i] = floorplan.rows[r].orient;
            }
            None => {
                // Nowhere to put it at all: count and stack at origin.
                violations += 1;
                ffet_obs::counter_add("place.legalize_violations", 1);
                origins[i] = Point::new(0, 0);
            }
        }
    }

    let hpwl = hpwl(netlist, library, &origins, &port_positions, row_h);
    Placement {
        origins,
        orients,
        violations,
        hpwl_nm: hpwl,
        port_positions,
    }
}

/// Half-perimeter wirelength of all signal nets.
fn hpwl(
    netlist: &Netlist,
    library: &Library,
    origins: &[Point],
    ports: &[Point],
    row_h: Nm,
) -> i64 {
    let cpp = library.tech().cpp();
    let mut total = 0i64;
    let port_net: ffet_geom::FxHashMap<u32, Point> = netlist
        .ports()
        .iter()
        .enumerate()
        .map(|(pi, p)| (p.net.0, ports[pi]))
        .collect();
    for (ni, net) in netlist.nets().iter().enumerate() {
        if net.degree() < 2 && !port_net.contains_key(&(ni as u32)) {
            continue;
        }
        let mut pts: Vec<Point> = Vec::with_capacity(net.degree() + 1);
        let mut push_pin = |inst: u32, pin: usize| {
            let cell = library.cell(netlist.instances()[inst as usize].cell);
            let px = origins[inst as usize].x + cell.pins[pin].offset_cpp * cpp;
            pts.push(Point::new(px, origins[inst as usize].y + row_h / 2));
        };
        if let Some(d) = net.driver {
            push_pin(d.inst.0, d.pin);
        }
        for s in &net.sinks {
            push_pin(s.inst.0, s.pin);
        }
        if let Some(p) = port_net.get(&(ni as u32)) {
            pts.push(*p);
        }
        if let Some(bb) = Rect::bounding(pts) {
            total += bb.half_perimeter();
        }
    }
    total
}

/// Spreads ports evenly around the die boundary (IO planning).
fn plan_ports(netlist: &Netlist, die: Rect) -> Vec<Point> {
    let n = netlist.ports().len();
    if n == 0 {
        return Vec::new();
    }
    let perimeter = 2 * (die.width() + die.height());
    let step = perimeter / n as i64;
    let mut positions = Vec::with_capacity(n);
    // All ports interleave around the perimeter in declaration order —
    // bus bits stay contiguous (as a real floorplan keeps them) but no
    // single edge collects a whole direction's traffic.
    let along = |dist: i64| -> Point {
        let d = dist.rem_euclid(perimeter);
        if d < die.width() {
            Point::new(die.lo.x + d, die.lo.y)
        } else if d < die.width() + die.height() {
            Point::new(die.hi.x, die.lo.y + (d - die.width()))
        } else if d < 2 * die.width() + die.height() {
            Point::new(die.hi.x - (d - die.width() - die.height()), die.hi.y)
        } else {
            Point::new(die.lo.x, die.hi.y - (d - 2 * die.width() - die.height()))
        }
    };
    for (i, _port) in netlist.ports().iter().enumerate() {
        positions.push(along(i as i64 * step));
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::powerplan::powerplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::{RoutingPattern, Technology};

    fn chain_netlist(lib: &Library, n: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "chain");
        let mut x = b.input("x");
        for _ in 0..n {
            x = b.not(x);
        }
        b.output("y", x);
        b.finish()
    }

    fn setup(util: f64) -> (Library, Netlist, Floorplan, PowerPlan) {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = chain_netlist(&lib, 600);
        let fp = floorplan(&nl, &lib, util, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        (lib, nl, fp, pp)
    }

    #[test]
    fn placement_is_legal_no_overlaps() {
        let (lib, nl, fp, pp) = setup(0.6);
        let pl = place(&nl, &lib, &fp, &pp, 1);
        assert_eq!(pl.violations, 0);
        let tech = lib.tech();
        // No two cells in the same row overlap.
        let mut rects: Vec<Rect> = Vec::new();
        for (i, inst) in nl.instances().iter().enumerate() {
            let w = lib.cell(inst.cell).width_cpp * tech.cpp();
            let r = Rect::from_origin_size(pl.origins[i], w, tech.cell_height());
            assert!(fp.die.contains_rect(&r), "cell {i} out of die");
            rects.push(r);
        }
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(
                    !rects[i].overlaps_strictly(&rects[j]),
                    "cells {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn cells_avoid_power_taps() {
        let (lib, nl, fp, pp) = setup(0.7);
        let pl = place(&nl, &lib, &fp, &pp, 2);
        let tech = lib.tech();
        let tap_rects: Vec<Rect> = pp
            .taps
            .iter()
            .map(|t| {
                Rect::from_origin_size(
                    Point::new(t.site * tech.cpp(), fp.rows[t.row].y),
                    t.width_sites * tech.cpp(),
                    tech.cell_height(),
                )
            })
            .collect();
        for (i, inst) in nl.instances().iter().enumerate() {
            let w = lib.cell(inst.cell).width_cpp * tech.cpp();
            let r = Rect::from_origin_size(pl.origins[i], w, tech.cell_height());
            for (ti, t) in tap_rects.iter().enumerate() {
                assert!(!r.overlaps_strictly(t), "cell {i} overlaps tap {ti}");
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let (lib, nl, fp, pp) = setup(0.6);
        let a = place(&nl, &lib, &fp, &pp, 7);
        let b = place(&nl, &lib, &fp, &pp, 7);
        assert_eq!(a.origins, b.origins);
        let c = place(&nl, &lib, &fp, &pp, 8);
        assert_ne!(a.origins, c.origins, "different seeds differ");
    }

    #[test]
    fn refinement_beats_random_wirelength() {
        // A chain netlist placed well has far lower HPWL than a shuffled
        // spread; the refinement must capture most of that.
        let (lib, nl, fp, pp) = setup(0.5);
        let pl = place(&nl, &lib, &fp, &pp, 3);
        // Lower bound: perfectly ordered chain ≈ sum of cell widths.
        let ideal: i64 = nl
            .instances()
            .iter()
            .map(|i| lib.cell(i.cell).width_cpp * lib.tech().cpp())
            .sum();
        // Random placement on this die would be ~ n_nets × die_span / 3.
        let die_span = (fp.die.width() + fp.die.height()) / 2;
        let random_est = nl.nets().len() as i64 * die_span / 3;
        assert!(
            pl.hpwl_nm < random_est * 3 / 4,
            "hpwl {} not clearly better than random {}",
            pl.hpwl_nm,
            random_est
        );
        assert!(pl.hpwl_nm >= ideal / 2, "hpwl below physical lower bound?");
    }

    #[test]
    fn extreme_utilization_reports_violations() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = chain_netlist(&lib, 600);
        let fp = floorplan(&nl, &lib, 0.99, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        let pl = place(&nl, &lib, &fp, &pp, 1);
        assert!(pl.violations > 0, "99% util with taps must violate");
    }
}
