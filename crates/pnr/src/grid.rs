use crate::calib::{CAPACITY_DERATE, GCELL_ROWS, GCELL_WIDTH_CPP, PIN_ACCESS_DEMAND};
use ffet_geom::{Axis, Nm, Point, Rect};
use ffet_tech::{RoutingPattern, Side, Technology};

/// The global-routing congestion grid: GCells with per-side, per-direction
/// track capacities derived from the Table II layer stack, and the demand
/// accumulated by routed nets and pin access.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    /// Number of GCell columns.
    pub cols: usize,
    /// Number of GCell rows.
    pub rows: usize,
    /// GCell width, nm.
    pub gcell_w: Nm,
    /// GCell height, nm.
    pub gcell_h: Nm,
    /// Horizontal track capacity per GCell, per side `[front, back]`.
    pub cap_h: [f64; 2],
    /// Vertical track capacity per GCell, per side.
    pub cap_v: [f64; 2],
    /// Horizontal demand per GCell per side (`side * cols * rows` layout).
    demand_h: [Vec<f64>; 2],
    /// Vertical demand per GCell per side.
    demand_v: [Vec<f64>; 2],
    /// Congestion history (negotiated-congestion pricing), per side.
    history: [Vec<f64>; 2],
}

/// One overflowed GCell report: `(x, y, side, h_demand, v_demand)`.
pub type HotGcell = (u16, u16, Side, f64, f64);

/// A GCell coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GCell {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl RoutingGrid {
    /// Builds the grid for a die under a routing pattern.
    #[must_use]
    pub fn new(tech: &Technology, die: Rect, pattern: RoutingPattern) -> RoutingGrid {
        let gcell_w = GCELL_WIDTH_CPP * tech.cpp();
        let gcell_h = GCELL_ROWS * tech.cell_height();
        let cols = ((die.width() + gcell_w - 1) / gcell_w).max(1) as usize;
        let rows = ((die.height() + gcell_h - 1) / gcell_h).max(1) as usize;

        let mut cap_h = [0.0f64; 2];
        let mut cap_v = [0.0f64; 2];
        for (si, side) in Side::BOTH.iter().enumerate() {
            let max_index = match side {
                Side::Front => pattern.front_layers(),
                Side::Back => pattern.back_layers(),
            };
            for layer in tech.stack().routing_layers(*side, max_index) {
                match layer.id.axis() {
                    Axis::Horizontal => {
                        cap_h[si] += (gcell_h / layer.pitch) as f64 * CAPACITY_DERATE;
                    }
                    Axis::Vertical => {
                        cap_v[si] += (gcell_w / layer.pitch) as f64 * CAPACITY_DERATE;
                    }
                }
            }
        }

        let len = cols * rows;
        RoutingGrid {
            cols,
            rows,
            gcell_w,
            gcell_h,
            cap_h,
            cap_v,
            demand_h: [vec![0.0; len], vec![0.0; len]],
            demand_v: [vec![0.0; len], vec![0.0; len]],
            history: [vec![0.0; len], vec![0.0; len]],
        }
    }

    /// GCell containing a point (clamped to the grid).
    #[must_use]
    pub fn gcell_at(&self, p: Point) -> GCell {
        GCell {
            x: ((p.x / self.gcell_w).clamp(0, self.cols as i64 - 1)) as u16,
            y: ((p.y / self.gcell_h).clamp(0, self.rows as i64 - 1)) as u16,
        }
    }

    /// Center point of a GCell, nm.
    #[must_use]
    pub fn center(&self, g: GCell) -> Point {
        Point::new(
            g.x as i64 * self.gcell_w + self.gcell_w / 2,
            g.y as i64 * self.gcell_h + self.gcell_h / 2,
        )
    }

    fn index(&self, g: GCell) -> usize {
        g.y as usize * self.cols + g.x as usize
    }

    fn side_index(side: Side) -> usize {
        match side {
            Side::Front => 0,
            Side::Back => 1,
        }
    }

    /// Adds pin-access demand at a pin location on a side.
    pub fn add_pin(&mut self, side: Side, at: Point) {
        let g = self.gcell_at(at);
        let i = self.index(g);
        let s = Self::side_index(side);
        self.demand_h[s][i] += PIN_ACCESS_DEMAND / 2.0;
        self.demand_v[s][i] += PIN_ACCESS_DEMAND / 2.0;
    }

    /// Adds a fixed blockage demand of `tracks` (split across both
    /// directions) at a location — intra-cell obstructions such as the
    /// CFET supervia stacks.
    pub fn add_blockage(&mut self, side: Side, at: Point, tracks: f64) {
        let g = self.gcell_at(at);
        let i = self.index(g);
        let s = Self::side_index(side);
        self.demand_h[s][i] += tracks / 2.0;
        self.demand_v[s][i] += tracks / 2.0;
    }

    /// Adds (or with `amount < 0` removes) routing demand for one step
    /// through GCell `g` in direction `axis`.
    pub fn add_demand(&mut self, side: Side, g: GCell, axis: Axis, amount: f64) {
        let i = self.index(g);
        let s = Self::side_index(side);
        match axis {
            Axis::Horizontal => self.demand_h[s][i] += amount,
            Axis::Vertical => self.demand_v[s][i] += amount,
        }
    }

    /// Present congestion cost of taking a step through `g` on `axis`:
    /// grows super-linearly once demand approaches capacity.
    #[must_use]
    pub fn step_cost(&self, side: Side, g: GCell, axis: Axis) -> f64 {
        let i = self.index(g);
        let s = Self::side_index(side);
        let (demand, cap) = match axis {
            Axis::Horizontal => (self.demand_h[s][i], self.cap_h[s]),
            Axis::Vertical => (self.demand_v[s][i], self.cap_v[s]),
        };
        if cap <= 0.0 {
            return 1.0e6; // side has no layers in this direction
        }
        let u = demand / cap;
        let penalty = if u < 0.6 {
            0.0
        } else {
            (u - 0.6) * (u - 0.6) * 25.0
        };
        1.0 + crate::calib::CONGESTION_WEIGHT * penalty + self.history[s][i]
    }

    /// Accumulated cost of a straight run of GCells from `from` to `to`
    /// (inclusive) stepping along `axis`, continued from `acc`.
    ///
    /// This is the incremental-candidate-costing kernel: it reproduces, term
    /// by term and in the same order, the sum the pattern router used to
    /// compute by materializing the run as a `Vec<GCell>` and folding
    /// `0.5 * (step_cost(a) + step_cost(b))` over adjacent pairs. Threading
    /// `acc` through consecutive runs of one candidate (instead of summing
    /// each run separately) keeps the floating-point rounding sequence —
    /// and therefore every candidate comparison — bit-identical to the
    /// materializing implementation.
    ///
    /// `from` and `to` must share a row (`axis == Horizontal`) or column
    /// (`axis == Vertical`); a degenerate run (`from == to`) contributes
    /// nothing.
    #[must_use]
    pub fn run_cost(&self, side: Side, from: GCell, to: GCell, axis: Axis, acc: f64) -> f64 {
        let mut acc = acc;
        let mut prev_cost = self.step_cost(side, from, axis);
        let (mut x, mut y) = (from.x, from.y);
        while (x, y) != (to.x, to.y) {
            match axis {
                Axis::Horizontal => x = if to.x > x { x + 1 } else { x - 1 },
                Axis::Vertical => y = if to.y > y { y + 1 } else { y - 1 },
            }
            let cost = self.step_cost(side, GCell { x, y }, axis);
            acc += 0.5 * (prev_cost + cost);
            prev_cost = cost;
        }
        acc
    }

    /// Overflow of a single GCell/direction (tracks over capacity).
    fn overflow_at(&self, s: usize, i: usize) -> f64 {
        let oh = (self.demand_h[s][i] - self.cap_h[s]).max(0.0);
        let ov = (self.demand_v[s][i] - self.cap_v[s]).max(0.0);
        oh + ov
    }

    /// Total overflow in tracks (the DRV proxy: every track over capacity
    /// somewhere is a short the detailed router could not fix).
    #[must_use]
    pub fn total_overflow(&self) -> f64 {
        let mut total = 0.0;
        for s in 0..2 {
            for i in 0..self.cols * self.rows {
                total += self.overflow_at(s, i);
            }
        }
        total
    }

    /// Overflow decomposed by wafer side and routing axis:
    /// `[side][axis]` with side 0 = front / 1 = back and axis 0 =
    /// horizontal / 1 = vertical, in tracks. Sums to [`total_overflow`]
    /// (`Self::total_overflow`). The per-side split is the paper's "which
    /// wafer side ran out of resource" diagnostic; the axis split
    /// distinguishes track exhaustion from via-access pressure.
    #[must_use]
    pub fn overflow_breakdown(&self) -> [[f64; 2]; 2] {
        let mut out = [[0.0; 2]; 2];
        for (s, side_out) in out.iter_mut().enumerate() {
            for i in 0..self.cols * self.rows {
                side_out[0] += (self.demand_h[s][i] - self.cap_h[s]).max(0.0);
                side_out[1] += (self.demand_v[s][i] - self.cap_v[s]).max(0.0);
            }
        }
        out
    }

    /// Whether GCell `g` is overflowed on `side` in any direction.
    #[must_use]
    pub fn is_overflowed(&self, side: Side, g: GCell) -> bool {
        let i = self.index(g);
        self.overflow_at(Self::side_index(side), i) > 0.0
    }

    /// Bumps congestion history on overflowed GCells (negotiated
    /// congestion: overuse gets progressively more expensive).
    pub fn update_history(&mut self) {
        for s in 0..2 {
            for i in 0..self.cols * self.rows {
                if self.overflow_at(s, i) > 0.0 {
                    self.history[s][i] += crate::calib::HISTORY_WEIGHT;
                }
            }
        }
    }

    /// [`update_history`](Self::update_history) fused with dirty-set
    /// collection: bumps the history cost of every overflowed GCell *and*
    /// appends each one to `out` as `(side_index, cell_index)` — side-major,
    /// ascending cell index, so the order is deterministic. One grid scan
    /// serves both the pricing update and the rip-up round's dirty set.
    /// `out` is not cleared.
    pub fn update_history_collect(&mut self, out: &mut Vec<(u8, u32)>) {
        for s in 0..2 {
            for i in 0..self.cols * self.rows {
                if self.overflow_at(s, i) > 0.0 {
                    self.history[s][i] += crate::calib::HISTORY_WEIGHT;
                    out.push((s as u8, i as u32));
                }
            }
        }
    }

    /// Top `k` overflowed GCells as `(x, y, side, h_demand, v_demand)`,
    /// worst first — congestion debugging/reporting.
    #[must_use]
    pub fn worst_gcells(&self, k: usize) -> Vec<HotGcell> {
        let mut all: Vec<(f64, HotGcell)> = Vec::new();
        for (s, side) in Side::BOTH.iter().enumerate() {
            for i in 0..self.cols * self.rows {
                let o = self.overflow_at(s, i);
                if o > 0.0 {
                    all.push((
                        o,
                        (
                            (i % self.cols) as u16,
                            (i / self.cols) as u16,
                            *side,
                            self.demand_h[s][i],
                            self.demand_v[s][i],
                        ),
                    ));
                }
            }
        }
        all.sort_by(|a, b| b.0.total_cmp(&a.0));
        all.into_iter().take(k).map(|(_, t)| t).collect()
    }

    /// Maximum demand/capacity ratio over the whole grid (reporting).
    #[must_use]
    pub fn peak_congestion(&self) -> f64 {
        let mut peak: f64 = 0.0;
        for s in 0..2 {
            for i in 0..self.cols * self.rows {
                if self.cap_h[s] > 0.0 {
                    peak = peak.max(self.demand_h[s][i] / self.cap_h[s]);
                }
                if self.cap_v[s] > 0.0 {
                    peak = peak.max(self.demand_v[s][i] / self.cap_v[s]);
                }
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::Technology;

    fn grid(pattern: (u8, u8)) -> RoutingGrid {
        let tech = Technology::ffet_3p5t();
        RoutingGrid::new(
            &tech,
            Rect::new(0, 0, 40_000, 33_600),
            RoutingPattern::new(pattern.0, pattern.1).unwrap(),
        )
    }

    #[test]
    fn symmetric_pattern_gives_symmetric_capacity() {
        let g = grid((12, 12));
        assert_eq!(g.cap_h[0], g.cap_h[1]);
        assert_eq!(g.cap_v[0], g.cap_v[1]);
        assert!(g.cap_h[0] > 10.0);
    }

    #[test]
    fn fewer_layers_less_capacity() {
        let full = grid((12, 12));
        let half = grid((6, 6));
        let single = grid((12, 0));
        assert!(half.cap_h[0] < full.cap_h[0]);
        assert_eq!(single.cap_h[1], 0.0);
        assert_eq!(single.cap_v[1], 0.0);
        assert_eq!(single.cap_h[0], full.cap_h[0]);
    }

    #[test]
    fn demand_and_overflow_accounting() {
        let mut g = grid((12, 12));
        let cell = GCell { x: 0, y: 0 };
        assert_eq!(g.total_overflow(), 0.0);
        let cap = g.cap_h[0];
        g.add_demand(Side::Front, cell, Axis::Horizontal, cap + 3.0);
        assert!((g.total_overflow() - 3.0).abs() < 1e-9);
        assert!(g.is_overflowed(Side::Front, cell));
        assert!(!g.is_overflowed(Side::Back, cell));
        g.add_demand(Side::Front, cell, Axis::Horizontal, -(cap + 3.0));
        assert_eq!(g.total_overflow(), 0.0);
    }

    #[test]
    fn congested_steps_cost_more() {
        let mut g = grid((12, 12));
        let cell = GCell { x: 1, y: 1 };
        let before = g.step_cost(Side::Front, cell, Axis::Horizontal);
        g.add_demand(Side::Front, cell, Axis::Horizontal, g.cap_h[0] * 1.1);
        let after = g.step_cost(Side::Front, cell, Axis::Horizontal);
        assert!(after > before);
    }

    #[test]
    fn missing_direction_is_prohibitive() {
        let g = grid((12, 0));
        let cell = GCell { x: 0, y: 0 };
        assert!(g.step_cost(Side::Back, cell, Axis::Horizontal) > 1e5);
    }

    #[test]
    fn gcell_lookup_clamps() {
        let g = grid((12, 12));
        let far = g.gcell_at(Point::new(1_000_000, -50));
        assert_eq!(far.x as usize, g.cols - 1);
        assert_eq!(far.y, 0);
    }
}
