use crate::calib::CTS_MAX_FANOUT;
use crate::placement::Placement;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::Point;
use ffet_netlist::{InstId, NetId, Netlist, PinRef};

/// Error from clock-tree synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtsError {
    /// The library provides no clock buffer to build the tree from.
    MissingClockBuffer {
        /// Name of the expected buffer cell.
        cell: String,
    },
}

impl std::fmt::Display for CtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtsError::MissingClockBuffer { cell } => {
                write!(f, "library has no clock buffer {cell}")
            }
        }
    }
}

impl std::error::Error for CtsError {}

/// Result of clock-tree synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockTree {
    /// Inserted clock-buffer instances.
    pub buffers: Vec<InstId>,
    /// Tree depth in buffer levels.
    pub levels: u32,
    /// Number of clock sinks (DFF CK pins) served.
    pub sink_count: usize,
}

/// Synthesizes a buffered clock tree for every net marked `is_clock`.
///
/// Recursive geometric bisection: sink groups larger than the fanout bound
/// are split by the median along their bounding box's longer axis, with a
/// `CKBUFD4` driving each group from its centroid. The netlist is mutated
/// in place (new buffer instances and clock nets); re-run placement
/// afterwards so the buffers get legal sites.
///
/// This stage is deliberately conventional — the paper: "the CTS stage is
/// performed, which is the same as the conventional flow". Clock pins stay
/// frontside (see [`ffet_cells::Library::redistribute_input_pins`]).
///
/// # Errors
///
/// [`CtsError::MissingClockBuffer`] when the library lacks the `CKBUFD4`
/// clock buffer the tree is built from.
pub fn synthesize_clock_tree(
    netlist: &mut Netlist,
    library: &Library,
    placement: &Placement,
) -> Result<ClockTree, CtsError> {
    let clock_roots: Vec<NetId> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_clock && n.degree() > 0)
        .map(|(i, _)| NetId(i as u32))
        .collect();

    let ckbuf = library
        .id(CellKind::new(CellFunction::ClkBuf, DriveStrength::D4))
        .ok_or_else(|| CtsError::MissingClockBuffer {
            cell: "CKBUFD4".to_owned(),
        })?;
    let tech = library.tech();
    let row_h = tech.cell_height();

    let mut buffers = Vec::new();
    let mut max_levels = 0;
    let mut sink_count = 0;
    let mut next_id = 0usize;

    for root in clock_roots {
        let sinks: Vec<(PinRef, Point)> = netlist
            .net(root)
            .sinks
            .iter()
            .map(|&p| {
                let inst = p.inst.0 as usize;
                let cell = library.cell(netlist.instances()[inst].cell);
                let w = cell.width_cpp * tech.cpp();
                (p, placement.center(inst, w, row_h))
            })
            .collect();
        sink_count += sinks.len();
        if sinks.len() <= 1 {
            continue;
        }
        let levels = build_level(
            netlist,
            library,
            ckbuf,
            root,
            root,
            sinks,
            &mut buffers,
            &mut next_id,
            0,
        );
        max_levels = max_levels.max(levels);
    }

    Ok(ClockTree {
        buffers,
        levels: max_levels,
        sink_count,
    })
}

/// Recursively buffers `sinks` under `source_net`; returns tree depth.
/// `origin` is the net the sink pins are still attached to (they are only
/// re-wired once, at the leaf level).
#[allow(clippy::too_many_arguments)]
fn build_level(
    netlist: &mut Netlist,
    library: &Library,
    ckbuf: ffet_cells::CellId,
    source_net: NetId,
    origin: NetId,
    sinks: Vec<(PinRef, Point)>,
    buffers: &mut Vec<InstId>,
    next_id: &mut usize,
    depth: u32,
) -> u32 {
    if sinks.len() <= CTS_MAX_FANOUT {
        // Leaf level: one buffer drives the sinks directly.
        let out = insert_buffer(netlist, library, ckbuf, source_net, buffers, next_id);
        for (pin, _) in &sinks {
            netlist.move_sink(origin, *pin, out);
        }
        return depth + 1;
    }
    // Split by median along the longer axis of the sink bounding box.
    let bb = ffet_geom::Rect::bounding(sinks.iter().map(|&(_, p)| p)).expect("non-empty sinks");
    let mut sorted = sinks;
    if bb.width() >= bb.height() {
        sorted.sort_by_key(|&(_, p)| p.x);
    } else {
        sorted.sort_by_key(|&(_, p)| p.y);
    }
    let right = sorted.split_off(sorted.len() / 2);
    let out = insert_buffer(netlist, library, ckbuf, source_net, buffers, next_id);
    let d1 = build_level(
        netlist,
        library,
        ckbuf,
        out,
        origin,
        sorted,
        buffers,
        next_id,
        depth + 1,
    );
    let d2 = build_level(
        netlist,
        library,
        ckbuf,
        out,
        origin,
        right,
        buffers,
        next_id,
        depth + 1,
    );
    d1.max(d2)
}

/// Adds one clock buffer fed from `source_net`; returns its output net.
fn insert_buffer(
    netlist: &mut Netlist,
    library: &Library,
    ckbuf: ffet_cells::CellId,
    source_net: NetId,
    buffers: &mut Vec<InstId>,
    next_id: &mut usize,
) -> NetId {
    let id = *next_id;
    *next_id += 1;
    let out = netlist.add_net(format!("_clk_{id}"));
    netlist.mark_clock(out);
    let inst = netlist.add_instance(
        library,
        format!("ctsbuf_{id}"),
        ckbuf,
        &[Some(source_net), Some(out)],
    );
    buffers.push(inst);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::placement::place;
    use crate::powerplan::powerplan;
    use ffet_cells::Library;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::{RoutingPattern, Technology};

    fn dff_bank(lib: &Library, n: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "bank");
        let clk = b.input("clk");
        b.netlist_mut().mark_clock(clk);
        let d = b.input("d");
        let mut q = d;
        for _ in 0..n {
            q = b.dff(q, clk);
        }
        b.output("q", q);
        b.finish()
    }

    fn run_cts(n: usize) -> (Library, Netlist, ClockTree) {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut nl = dff_bank(&lib, n);
        let fp = floorplan(&nl, &lib, 0.6, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        let pl = place(&nl, &lib, &fp, &pp, 1);
        let tree = synthesize_clock_tree(&mut nl, &lib, &pl).expect("clock buffer available");
        (lib, nl, tree)
    }

    #[test]
    fn missing_buffer_error_renders_cell_name() {
        let e = CtsError::MissingClockBuffer {
            cell: "CKBUFD4".to_owned(),
        };
        assert_eq!(e.to_string(), "library has no clock buffer CKBUFD4");
    }

    #[test]
    fn small_bank_gets_single_buffer() {
        let (lib, nl, tree) = run_cts(10);
        assert_eq!(tree.buffers.len(), 1);
        assert_eq!(tree.sink_count, 10);
        assert_eq!(tree.levels, 1);
        nl.check_consistency(&lib).unwrap();
        // The clock root now drives exactly the one buffer.
        let root = nl.net_by_name("clk").unwrap();
        assert_eq!(nl.net(root).sinks.len(), 1);
    }

    #[test]
    fn large_bank_builds_multilevel_tree() {
        let (lib, nl, tree) = run_cts(200);
        assert!(tree.buffers.len() > 8, "buffers {}", tree.buffers.len());
        assert!(tree.levels >= 3, "levels {}", tree.levels);
        nl.check_consistency(&lib).unwrap();
        // Every DFF CK pin hangs off a clock net with bounded fanout.
        for net in nl.nets().iter().filter(|n| n.is_clock) {
            assert!(
                net.sinks.len() <= crate::calib::CTS_MAX_FANOUT,
                "net {} fanout {}",
                net.name,
                net.sinks.len()
            );
        }
    }

    #[test]
    fn all_dffs_still_clocked() {
        let (lib, nl, _) = run_cts(100);
        for inst in nl.instances() {
            if library_is_dff(&lib, inst) {
                let ck_net = inst.conns[1].expect("CK connected");
                assert!(nl.net(ck_net).is_clock, "CK on non-clock net");
            }
        }
    }

    fn library_is_dff(lib: &Library, inst: &ffet_netlist::Instance) -> bool {
        lib.cell(inst.cell).kind.function == CellFunction::Dff
    }
}
