//! NLDM-style timing/power tables and switch-level cell characterization.
//!
//! This crate plays the role of the Liberty libraries used by the paper's
//! commercial flow. A cell is described electrically (drive resistances,
//! intra-cell parasitics, via counts — see [`CellElectrical`]) and the
//! [`characterize`] engine turns that description into non-linear
//! delay-model lookup tables ([`Table2d`]) indexed by input slew and output
//! load, exactly the shape STA consumes.
//!
//! Units follow the kΩ/fF/ps/fJ convention: `kΩ × fF = ps`, `fF × V² = fJ`,
//! which keeps all arithmetic in conveniently-sized numbers.
//!
//! The FFET-vs-CFET library differences of the paper's Table I are *derived*
//! here, not hard-coded: the FFET electrical model has smaller intra-cell
//! parasitics (no supervias; symmetric M0) which yields faster timing and
//! lower buffer transition power, while leakage — set by the intrinsic
//! transistors that both technologies share — is identical.
//!
//! # Example
//!
//! ```
//! use ffet_liberty::{CellElectrical, characterize, CharacterizeConfig};
//!
//! let inv = CellElectrical::inverter_like(1.0);
//! let timing = characterize(&inv, &CharacterizeConfig::default());
//! let d_small = timing.arcs[0].delay_rise.lookup(10.0, 1.0);
//! let d_large = timing.arcs[0].delay_rise.lookup(10.0, 20.0);
//! assert!(d_large > d_small, "delay grows with load");
//! ```

mod characterize;
mod table;
mod timing;
mod writer;

pub use characterize::{characterize, CellElectrical, CharacterizeConfig};
pub use table::Table2d;
pub use timing::{CellTiming, TimingArc, TimingSense};
pub use writer::write_liberty;

/// Supply voltage of the virtual 5 nm node, in volts.
pub const VDD: f64 = 0.7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterized_inverter_has_sane_delays() {
        let inv = CellElectrical::inverter_like(1.0);
        let t = characterize(&inv, &CharacterizeConfig::default());
        // Single-digit-ps unloaded delay for a D1 inverter at 5nm class.
        let d = t.arcs[0].delay_fall.lookup(5.0, 0.5);
        assert!(d > 0.5 && d < 30.0, "delay = {d} ps");
    }
}
