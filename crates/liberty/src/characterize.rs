use crate::table::Table2d;
use crate::timing::{CellTiming, TimingArc, TimingSense};
use crate::VDD;

/// ln 2 — the step-response 50% crossing factor of a first-order RC stage.
const LN2: f64 = std::f64::consts::LN_2;
/// 10–90% slew of a first-order RC stage is 2.2·RC.
const SLEW_RC: f64 = 2.197;
/// Fraction of the driving input slew that leaks into stage delay.
const SLEW_TO_DELAY: f64 = 0.22;
/// Short-circuit energy per ps of input slew, fJ/ps.
const SHORT_CIRCUIT_FJ_PER_PS: f64 = 0.002;

/// Switch-level electrical description of a standard cell, the input to
/// [`characterize`].
///
/// The technology dependence enters through the parasitic fields: the CFET
/// variant of a cell carries supervia resistance/capacitance on its internal
/// nodes (the bottom pFET must reach the frontside), while the FFET variant
/// only pays the Drain Merge via on its n–p common drain. Both share the
/// same intrinsic transistor model, so drive resistances and leakage match.
#[derive(Debug, Clone, PartialEq)]
pub struct CellElectrical {
    /// Number of data input pins.
    pub inputs: usize,
    /// Drive-strength multiple (D1 = 1.0, D2 = 2.0, …). Scales transistor
    /// widths: resistances divide by it, input/parasitic caps multiply.
    pub drive: f64,
    /// Pull-up network resistance at D1, kΩ.
    pub pull_up_res_kohm: f64,
    /// Pull-down network resistance at D1, kΩ.
    pub pull_down_res_kohm: f64,
    /// Fixed series via resistance in the pull-up path, kΩ (Drain Merge for
    /// FFET; supervia for CFET). Does not scale with drive.
    pub pull_up_via_kohm: f64,
    /// Fixed series via resistance in the pull-down path, kΩ.
    pub pull_down_via_kohm: f64,
    /// Intra-cell parasitic capacitance on the output node at D1, fF.
    pub output_parasitic_ff: f64,
    /// Parasitic capacitance on each internal (inter-stage) node at D1, fF.
    pub internal_parasitic_ff: f64,
    /// Gate capacitance of one input pin at D1, fF.
    pub input_cap_ff: f64,
    /// Leakage power at D1, nW (identical across technologies).
    pub leakage_nw: f64,
    /// Number of cascaded inverting stages (1 = INV/NAND, 2 = BUF/AND,
    /// 3 = clk→Q path of a DFF).
    pub stages: usize,
    /// Whether the cell is a sequential element.
    pub is_sequential: bool,
    /// Setup requirement at D1, ps (sequential cells only).
    pub setup_ps: f64,
}

impl CellElectrical {
    /// A generic inverter-like cell at the given drive, with parasitics in
    /// the FFET range. Useful for tests and examples.
    #[must_use]
    pub fn inverter_like(drive: f64) -> CellElectrical {
        CellElectrical {
            inputs: 1,
            drive,
            pull_up_res_kohm: 6.5,
            pull_down_res_kohm: 5.0,
            pull_up_via_kohm: 0.25,
            pull_down_via_kohm: 0.05,
            output_parasitic_ff: 0.35,
            internal_parasitic_ff: 0.25,
            input_cap_ff: 0.45,
            leakage_nw: 0.8,
            stages: 1,
            is_sequential: false,
            setup_ps: 0.0,
        }
    }

    fn r_up(&self) -> f64 {
        self.pull_up_res_kohm / self.drive + self.pull_up_via_kohm
    }

    fn r_down(&self) -> f64 {
        self.pull_down_res_kohm / self.drive + self.pull_down_via_kohm
    }

    fn c_out(&self) -> f64 {
        self.output_parasitic_ff * self.drive
    }

    fn c_internal(&self) -> f64 {
        self.internal_parasitic_ff * self.drive + self.input_cap_ff * self.drive
    }
}

/// Characterization grid and conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeConfig {
    /// Input-slew axis, ps.
    pub slew_axis: Vec<f64>,
    /// Output-load axis, fF.
    pub load_axis: Vec<f64>,
}

impl Default for CharacterizeConfig {
    fn default() -> CharacterizeConfig {
        CharacterizeConfig {
            slew_axis: vec![2.0, 5.0, 10.0, 20.0, 40.0, 80.0],
            load_axis: vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
        }
    }
}

/// One RC stage's 50% delay and output slew.
fn stage(r_kohm: f64, c_ff: f64, slew_in_ps: f64) -> (f64, f64) {
    let rc = r_kohm * c_ff;
    (LN2 * rc + SLEW_TO_DELAY * slew_in_ps, SLEW_RC * rc)
}

/// Propagates a transition through `n` cascaded stages, the last of which
/// drives `load_ff`; earlier stages drive the cell's internal node cap.
/// Alternating stages invert the edge, so pull-up/pull-down alternate.
///
/// Returns total delay and final output slew for the requested *output*
/// edge (`rising_output`).
fn cascade(
    cell: &CellElectrical,
    rising_output: bool,
    slew_in_ps: f64,
    load_ff: f64,
) -> (f64, f64) {
    let mut delay = 0.0;
    let mut slew = slew_in_ps;
    // Work backwards over edges: the last stage produces the requested edge.
    // Stage k (0-based, k = stages-1 is last) produces a rising edge iff
    // rising_output XOR (stages-1-k is odd).
    for k in 0..cell.stages {
        let from_last = cell.stages - 1 - k;
        let rising_here = rising_output == from_last.is_multiple_of(2);
        let r = if rising_here {
            cell.r_up()
        } else {
            cell.r_down()
        };
        let c = if k == cell.stages - 1 {
            cell.c_out() + load_ff
        } else {
            cell.c_internal()
        };
        let (d, s) = stage(r, c, slew);
        delay += d;
        slew = s;
    }
    (delay, slew)
}

/// Characterizes a cell into NLDM tables.
///
/// Delay/slew use a cascaded first-order RC model; internal energy charges
/// the intra-cell parasitics (plus a slew-dependent short-circuit term);
/// leakage passes through unchanged — matching the paper's observation that
/// leakage is set by the intrinsic transistors and is identical between
/// FFET and CFET.
#[must_use]
pub fn characterize(cell: &CellElectrical, config: &CharacterizeConfig) -> CellTiming {
    let sx = config.slew_axis.clone();
    let lx = config.load_axis.clone();

    let delay_rise = Table2d::from_fn(sx.clone(), lx.clone(), |s, l| cascade(cell, true, s, l).0);
    let delay_fall = Table2d::from_fn(sx.clone(), lx.clone(), |s, l| cascade(cell, false, s, l).0);
    let slew_rise = Table2d::from_fn(sx.clone(), lx.clone(), |s, l| cascade(cell, true, s, l).1);
    let slew_fall = Table2d::from_fn(sx.clone(), lx.clone(), |s, l| cascade(cell, false, s, l).1);

    // Internal energy: every internal node swings once per output
    // transition; the output node's parasitic (not the external load —
    // that is counted by the power analysis against the net cap) swings too.
    let internal_c = cell.c_internal() * (cell.stages.saturating_sub(1)) as f64 + cell.c_out();
    let energy = move |s: f64, _l: f64| internal_c * VDD * VDD + SHORT_CIRCUIT_FJ_PER_PS * s;
    let energy_rise = Table2d::from_fn(sx.clone(), lx.clone(), energy);
    let energy_fall = Table2d::from_fn(sx.clone(), lx.clone(), energy);

    let sense = if cell.stages % 2 == 1 {
        TimingSense::NegativeUnate
    } else {
        TimingSense::PositiveUnate
    };

    let arcs = (0..cell.inputs.max(1))
        .map(|i| TimingArc {
            from_input: i,
            sense,
            delay_rise: delay_rise.clone(),
            delay_fall: delay_fall.clone(),
            slew_rise: slew_rise.clone(),
            slew_fall: slew_fall.clone(),
        })
        .collect();

    CellTiming {
        arcs,
        input_caps: vec![cell.input_cap_ff * cell.drive; cell.inputs.max(1)],
        energy_rise,
        energy_fall,
        leakage_nw: cell.leakage_nw * cell.drive,
        setup_ps: cell.setup_ps,
        is_sequential: cell.is_sequential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_drive_is_faster_under_load() {
        let cfg = CharacterizeConfig::default();
        let d1 = characterize(&CellElectrical::inverter_like(1.0), &cfg);
        let d4 = characterize(&CellElectrical::inverter_like(4.0), &cfg);
        let load = 16.0;
        assert!(d4.worst_delay(10.0, load) < d1.worst_delay(10.0, load));
    }

    #[test]
    fn higher_drive_costs_more_leakage_and_cap() {
        let cfg = CharacterizeConfig::default();
        let d1 = characterize(&CellElectrical::inverter_like(1.0), &cfg);
        let d2 = characterize(&CellElectrical::inverter_like(2.0), &cfg);
        assert!(d2.leakage_nw > d1.leakage_nw);
        assert!(d2.total_input_cap() > d1.total_input_cap());
    }

    #[test]
    fn delay_monotone_in_load_and_slew() {
        let cfg = CharacterizeConfig::default();
        let t = characterize(&CellElectrical::inverter_like(1.0), &cfg);
        let arc = &t.arcs[0];
        assert!(arc.delay_rise.lookup(5.0, 8.0) > arc.delay_rise.lookup(5.0, 1.0));
        assert!(arc.delay_rise.lookup(40.0, 4.0) > arc.delay_rise.lookup(5.0, 4.0));
    }

    #[test]
    fn two_stage_cell_is_slower_unloaded_but_less_sensitive_to_load() {
        let cfg = CharacterizeConfig::default();
        let mut buf = CellElectrical::inverter_like(1.0);
        buf.stages = 2;
        let inv_t = characterize(&CellElectrical::inverter_like(1.0), &cfg);
        let buf_t = characterize(&buf, &cfg);
        assert!(buf_t.worst_delay(5.0, 0.5) > inv_t.worst_delay(5.0, 0.5));
        let inv_sens = inv_t.worst_delay(5.0, 32.0) - inv_t.worst_delay(5.0, 0.5);
        let buf_sens = buf_t.worst_delay(5.0, 32.0) - buf_t.worst_delay(5.0, 0.5);
        // Same last-stage drive here, so sensitivity is equal; with the
        // larger last stage used by real BUF cells it would be smaller.
        assert!(buf_sens <= inv_sens + 1e-9);
    }

    #[test]
    fn smaller_parasitics_mean_faster_and_lower_energy() {
        // This is the Table I mechanism: FFET cells have smaller intra-cell
        // parasitics than CFET cells and so are faster and cheaper to switch.
        let cfg = CharacterizeConfig::default();
        let mut ffet_like = CellElectrical::inverter_like(1.0);
        let mut cfet_like = ffet_like.clone();
        cfet_like.output_parasitic_ff *= 1.3;
        cfet_like.internal_parasitic_ff *= 1.4;
        cfet_like.pull_up_via_kohm += 0.3; // supervia
        ffet_like.stages = 2;
        cfet_like.stages = 2;
        let f = characterize(&ffet_like, &cfg);
        let c = characterize(&cfet_like, &cfg);
        assert!(f.worst_delay(10.0, 4.0) < c.worst_delay(10.0, 4.0));
        assert!(f.transition_energy(10.0, 4.0) < c.transition_energy(10.0, 4.0));
        assert_eq!(f.leakage_nw, c.leakage_nw);
    }
}
