use crate::table::Table2d;

/// Unateness of a timing arc: how an input transition propagates to the
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingSense {
    /// Rising input → rising output (buffers, AND-type paths).
    PositiveUnate,
    /// Rising input → falling output (inverters, NAND/NOR-type paths).
    NegativeUnate,
    /// Both output transitions possible (XOR, MUX select).
    NonUnate,
}

/// One combinational (or clock→Q) timing arc of a cell: delay and
/// output-slew tables for both output transitions.
///
/// `delay_rise` is the delay to a *rising output* transition (and
/// `slew_rise` its slew), regardless of the input edge that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    /// Input pin index the arc starts from (library pin order).
    pub from_input: usize,
    /// Unateness of the arc.
    pub sense: TimingSense,
    /// Delay (ps) to a rising output, by input slew (ps) × load (fF).
    pub delay_rise: Table2d,
    /// Delay (ps) to a falling output.
    pub delay_fall: Table2d,
    /// Output slew (ps) of a rising output.
    pub slew_rise: Table2d,
    /// Output slew (ps) of a falling output.
    pub slew_fall: Table2d,
}

impl TimingArc {
    /// Worst (max over rise/fall) delay at the given slew and load — the
    /// quantity used for library KPI comparisons.
    #[must_use]
    pub fn worst_delay(&self, slew_ps: f64, load_ff: f64) -> f64 {
        self.delay_rise
            .lookup(slew_ps, load_ff)
            .max(self.delay_fall.lookup(slew_ps, load_ff))
    }
}

/// Characterized timing/power view of one library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Combinational input→output arcs, one per input pin (for sequential
    /// cells this is the clock→Q arc followed by setup-modelled data arcs).
    pub arcs: Vec<TimingArc>,
    /// Input pin capacitance per input pin, fF.
    pub input_caps: Vec<f64>,
    /// Internal switching energy (fJ) per output transition: rise.
    pub energy_rise: Table2d,
    /// Internal switching energy (fJ) per output transition: fall.
    pub energy_fall: Table2d,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Setup time (ps) for sequential cells, 0 for combinational.
    pub setup_ps: f64,
    /// Clock-to-Q base delay contribution baked into the arcs for
    /// sequential cells (informational).
    pub is_sequential: bool,
}

impl CellTiming {
    /// Total transition energy (rise + fall) at nominal conditions — the
    /// "transition power" KPI of the paper's Table I.
    #[must_use]
    pub fn transition_energy(&self, slew_ps: f64, load_ff: f64) -> f64 {
        self.energy_rise.lookup(slew_ps, load_ff) + self.energy_fall.lookup(slew_ps, load_ff)
    }

    /// Worst propagation delay over all arcs at nominal conditions.
    #[must_use]
    pub fn worst_delay(&self, slew_ps: f64, load_ff: f64) -> f64 {
        self.arcs
            .iter()
            .map(|a| a.worst_delay(slew_ps, load_ff))
            .fold(0.0, f64::max)
    }

    /// Sum of all input pin capacitances, fF.
    #[must_use]
    pub fn total_input_cap(&self) -> f64 {
        self.input_caps.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: f64) -> Table2d {
        Table2d::new(vec![1.0, 10.0], vec![1.0, 10.0], vec![vec![v; 2]; 2])
    }

    fn arc(rise: f64, fall: f64) -> TimingArc {
        TimingArc {
            from_input: 0,
            sense: TimingSense::NegativeUnate,
            delay_rise: flat(rise),
            delay_fall: flat(fall),
            slew_rise: flat(rise / 2.0),
            slew_fall: flat(fall / 2.0),
        }
    }

    #[test]
    fn worst_delay_takes_max_edge() {
        let a = arc(3.0, 7.0);
        assert_eq!(a.worst_delay(1.0, 1.0), 7.0);
    }

    #[test]
    fn cell_worst_delay_over_arcs() {
        let cell = CellTiming {
            arcs: vec![arc(3.0, 4.0), arc(9.0, 2.0)],
            input_caps: vec![0.5, 0.7],
            energy_rise: flat(1.0),
            energy_fall: flat(2.0),
            leakage_nw: 1.0,
            setup_ps: 0.0,
            is_sequential: false,
        };
        assert_eq!(cell.worst_delay(1.0, 1.0), 9.0);
        assert_eq!(cell.transition_energy(1.0, 1.0), 3.0);
        assert!((cell.total_input_cap() - 1.2).abs() < 1e-12);
    }
}
