/// A two-dimensional NLDM lookup table indexed by input slew (ps) and
/// output load (fF), with bilinear interpolation inside the grid and
/// clamped-gradient extrapolation outside it.
///
/// ```
/// use ffet_liberty::Table2d;
/// let t = Table2d::new(
///     vec![1.0, 10.0],
///     vec![1.0, 4.0],
///     vec![vec![2.0, 5.0], vec![3.0, 6.0]],
/// );
/// assert_eq!(t.lookup(1.0, 1.0), 2.0);
/// assert_eq!(t.lookup(5.5, 2.5), 4.0); // centre of the grid
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table2d {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// `values[i][j]` corresponds to `slew_axis[i]`, `load_axis[j]`.
    values: Vec<Vec<f64>>,
}

impl Table2d {
    /// Creates a table from its axes and values.
    ///
    /// # Panics
    ///
    /// Panics if axes are empty, not strictly increasing, or the value grid
    /// does not match the axis lengths.
    #[must_use]
    pub fn new(slew_axis: Vec<f64>, load_axis: Vec<f64>, values: Vec<Vec<f64>>) -> Table2d {
        assert!(!slew_axis.is_empty() && !load_axis.is_empty(), "empty axis");
        assert!(
            slew_axis.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            load_axis.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        assert_eq!(values.len(), slew_axis.len(), "row count mismatch");
        assert!(
            values.iter().all(|row| row.len() == load_axis.len()),
            "column count mismatch"
        );
        Table2d {
            slew_axis,
            load_axis,
            values,
        }
    }

    /// Builds a table by evaluating `f(slew, load)` at every grid point.
    #[must_use]
    pub fn from_fn<F: FnMut(f64, f64) -> f64>(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        mut f: F,
    ) -> Table2d {
        let values = slew_axis
            .iter()
            .map(|&s| load_axis.iter().map(|&l| f(s, l)).collect())
            .collect();
        Table2d::new(slew_axis, load_axis, values)
    }

    /// Interpolated table value at the given input slew and output load.
    ///
    /// Outside the characterized grid the boundary gradient is extended
    /// linearly (standard Liberty extrapolation), so STA on heavily loaded
    /// nets still sees monotone behaviour.
    #[must_use]
    pub fn lookup(&self, slew_ps: f64, load_ff: f64) -> f64 {
        let (i, tx) = Self::locate(&self.slew_axis, slew_ps);
        let (j, ty) = Self::locate(&self.load_axis, load_ff);
        // Clamp the upper index so single-point axes degenerate gracefully
        // (their interpolation parameter is 0, so the value is unaffected).
        let i1 = (i + 1).min(self.slew_axis.len() - 1);
        let j1 = (j + 1).min(self.load_axis.len() - 1);
        let v00 = self.values[i][j];
        let v01 = self.values[i][j1];
        let v10 = self.values[i1][j];
        let v11 = self.values[i1][j1];
        let a = v00 + (v01 - v00) * ty;
        let b = v10 + (v11 - v10) * ty;
        a + (b - a) * tx
    }

    /// Finds the interpolation segment for `x` on `axis`: returns the lower
    /// index and the (possibly <0 or >1) interpolation parameter.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if axis.len() == 1 {
            return (0, 0.0);
        }
        let last = axis.len() - 2;
        let i = match axis.iter().position(|&a| a > x) {
            Some(0) => 0,
            Some(p) => (p - 1).min(last),
            None => last,
        };
        let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
        (i, t)
    }

    /// The input-slew axis (ps).
    #[must_use]
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The output-load axis (fF).
    #[must_use]
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// Applies `f` to every value, returning the transformed table. Used by
    /// library-level derating.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Table2d {
        Table2d {
            slew_axis: self.slew_axis.clone(),
            load_axis: self.load_axis.clone(),
            values: self
                .values
                .iter()
                .map(|row| row.iter().map(|&v| f(v)).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table2d {
        Table2d::new(
            vec![1.0, 10.0, 100.0],
            vec![1.0, 4.0, 16.0],
            vec![
                vec![2.0, 5.0, 14.0],
                vec![3.0, 6.0, 15.0],
                vec![8.0, 11.0, 20.0],
            ],
        )
    }

    #[test]
    fn exact_grid_points() {
        let t = sample();
        assert_eq!(t.lookup(1.0, 1.0), 2.0);
        assert_eq!(t.lookup(100.0, 16.0), 20.0);
        assert_eq!(t.lookup(10.0, 4.0), 6.0);
    }

    #[test]
    fn extrapolates_beyond_grid() {
        let t = sample();
        // Above the largest load the boundary gradient continues.
        let inside = t.lookup(1.0, 16.0);
        let outside = t.lookup(1.0, 28.0);
        assert!(outside > inside);
        // Below the smallest slew likewise.
        assert!(t.lookup(0.1, 1.0) < t.lookup(1.0, 1.0));
    }

    #[test]
    fn single_point_axis_is_constant() {
        let t = Table2d::new(vec![5.0], vec![2.0], vec![vec![7.0]]);
        assert_eq!(t.lookup(0.0, 100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_axis() {
        let _ = Table2d::new(vec![2.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn interpolation_bounded_inside_grid() {
        let t = sample();
        let mut rng = ffet_geom::Rng64::new(0x11be01);
        for _ in 0..256 {
            let s = 1.0 + rng.f64() * 99.0;
            let l = 1.0 + rng.f64() * 15.0;
            let v = t.lookup(s, l);
            assert!((2.0..=20.0).contains(&v), "v = {v} at s={s} l={l}");
        }
    }

    #[test]
    fn monotone_table_interpolates_monotonically() {
        let t = sample();
        let mut rng = ffet_geom::Rng64::new(0x11be02);
        for _ in 0..256 {
            let s = 1.0 + rng.f64() * 99.0;
            let a = 1.0 + rng.f64() * 15.0;
            let b = 1.0 + rng.f64() * 15.0;
            let (l1, l2) = if a < b { (a, b) } else { (b, a) };
            assert!(t.lookup(s, l1) <= t.lookup(s, l2), "s={s} l1={l1} l2={l2}");
        }
    }
}
