//! Liberty (`.lib`) text export of characterized timing.
//!
//! Emits the industry-familiar view of a characterized cell: lookup-table
//! templates, per-pin capacitances, timing arcs with rise/fall delay and
//! transition tables, internal power and leakage. The output is meant for
//! inspection and interchange with text-based tooling; it deliberately
//! sticks to the NLDM constructs this crate models.

use crate::table::Table2d;
use crate::timing::{CellTiming, TimingSense};
use std::fmt::Write as _;

/// Writes one `.lib` library containing the given `(name, timing)` cells.
///
/// ```
/// use ffet_liberty::{characterize, write_liberty, CellElectrical, CharacterizeConfig};
///
/// let inv = characterize(&CellElectrical::inverter_like(1.0), &CharacterizeConfig::default());
/// let lib = write_liberty("demo", &[("INVD1".to_owned(), inv)]);
/// assert!(lib.contains("cell (INVD1)"));
/// ```
#[must_use]
pub fn write_liberty(library_name: &str, cells: &[(String, CellTiming)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "library ({library_name}) {{");
    let _ = writeln!(s, "  delay_model : table_lookup;");
    let _ = writeln!(s, "  time_unit : \"1ps\";");
    let _ = writeln!(s, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(s, "  voltage_unit : \"1V\";");
    let _ = writeln!(s, "  leakage_power_unit : \"1nW\";");
    let _ = writeln!(s, "  nom_voltage : {};", crate::VDD);

    // One shared template per distinct table shape (cells share the
    // characterization grid, so in practice this is a single template).
    if let Some((_, first)) = cells.first() {
        if let Some(arc) = first.arcs.first() {
            let _ = writeln!(s, "  lu_table_template (delay_template) {{");
            let _ = writeln!(s, "    variable_1 : input_net_transition;");
            let _ = writeln!(s, "    variable_2 : total_output_net_capacitance;");
            let _ = writeln!(s, "    index_1 ({});", fmt_axis(arc.delay_rise.slew_axis()));
            let _ = writeln!(s, "    index_2 ({});", fmt_axis(arc.delay_rise.load_axis()));
            let _ = writeln!(s, "  }}");
        }
    }

    for (name, timing) in cells {
        let _ = writeln!(s, "  cell ({name}) {{");
        let _ = writeln!(s, "    cell_leakage_power : {:.4};", timing.leakage_nw);
        if timing.is_sequential {
            let _ = writeln!(
                s,
                "    ff (IQ, IQN) {{ clocked_on : \"CK\"; next_state : \"D\"; }}"
            );
        }
        let pin_name = |i: usize| -> String {
            if timing.is_sequential {
                // The library's DFF convention: data first, clock second.
                if i == 0 {
                    "D".to_owned()
                } else {
                    "CK".to_owned()
                }
            } else {
                format!("I{i}")
            }
        };
        for (i, cap) in timing.input_caps.iter().enumerate() {
            let _ = writeln!(s, "    pin ({}) {{", pin_name(i));
            let _ = writeln!(s, "      direction : input;");
            let _ = writeln!(s, "      capacitance : {cap:.4};");
            if timing.is_sequential && timing.setup_ps > 0.0 && i == 0 {
                let _ = writeln!(s, "      timing () {{");
                let _ = writeln!(s, "        timing_type : setup_rising;");
                let _ = writeln!(s, "        related_pin : \"CK\";");
                let _ = writeln!(
                    s,
                    "        rise_constraint (scalar) {{ values (\"{:.2}\"); }}",
                    timing.setup_ps
                );
                let _ = writeln!(s, "      }}");
            }
            let _ = writeln!(s, "    }}");
        }
        let _ = writeln!(s, "    pin (Z) {{");
        let _ = writeln!(s, "      direction : output;");
        for arc in &timing.arcs {
            let _ = writeln!(s, "      timing () {{");
            let related = if timing.is_sequential {
                // Sequential arcs are clock→Q.
                "CK".to_owned()
            } else {
                pin_name(arc.from_input)
            };
            let _ = writeln!(s, "        related_pin : \"{related}\";");
            let sense = match arc.sense {
                TimingSense::PositiveUnate => "positive_unate",
                TimingSense::NegativeUnate => "negative_unate",
                TimingSense::NonUnate => "non_unate",
            };
            let _ = writeln!(s, "        timing_sense : {sense};");
            write_table(&mut s, "cell_rise", &arc.delay_rise);
            write_table(&mut s, "cell_fall", &arc.delay_fall);
            write_table(&mut s, "rise_transition", &arc.slew_rise);
            write_table(&mut s, "fall_transition", &arc.slew_fall);
            let _ = writeln!(s, "      }}");
        }
        let _ = writeln!(s, "      internal_power () {{");
        write_table(&mut s, "rise_power", &timing.energy_rise);
        write_table(&mut s, "fall_power", &timing.energy_fall);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }}");
    }
    let _ = writeln!(s, "}}");
    s
}

fn fmt_axis(axis: &[f64]) -> String {
    let joined = axis
        .iter()
        .map(|v| format!("{v:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"{joined}\"")
}

fn write_table(s: &mut String, label: &str, table: &Table2d) {
    let _ = writeln!(s, "        {label} (delay_template) {{");
    let _ = writeln!(s, "          index_1 ({});", fmt_axis(table.slew_axis()));
    let _ = writeln!(s, "          index_2 ({});", fmt_axis(table.load_axis()));
    let _ = writeln!(s, "          values ( \\");
    let rows: Vec<String> = table
        .slew_axis()
        .iter()
        .map(|&slew| {
            let cells: Vec<String> = table
                .load_axis()
                .iter()
                .map(|&load| format!("{:.4}", table.lookup(slew, load)))
                .collect();
            format!("            \"{}\"", cells.join(", "))
        })
        .collect();
    let _ = writeln!(s, "{} );", rows.join(", \\\n"));
    let _ = writeln!(s, "        }}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CellElectrical, CharacterizeConfig};

    fn sample() -> Vec<(String, CellTiming)> {
        let cfg = CharacterizeConfig::default();
        let inv = characterize(&CellElectrical::inverter_like(1.0), &cfg);
        let mut dff_model = CellElectrical::inverter_like(1.0);
        dff_model.inputs = 2;
        dff_model.stages = 3;
        dff_model.is_sequential = true;
        dff_model.setup_ps = 16.0;
        let dff = characterize(&dff_model, &cfg);
        vec![("INVD1".to_owned(), inv), ("DFFD1".to_owned(), dff)]
    }

    #[test]
    fn emits_library_structure() {
        let lib = write_liberty("ffet_3p5t", &sample());
        assert!(lib.starts_with("library (ffet_3p5t) {"));
        assert!(lib.contains("cell (INVD1)"));
        assert!(lib.contains("cell (DFFD1)"));
        assert!(lib.contains("lu_table_template (delay_template)"));
        assert!(lib.contains("timing_sense : negative_unate;"));
        assert!(lib.trim_end().ends_with('}'));
    }

    #[test]
    fn sequential_cells_get_ff_group_and_setup() {
        let lib = write_liberty("l", &sample());
        let dff = lib.split("cell (DFFD1)").nth(1).expect("dff section");
        assert!(dff.contains("ff (IQ, IQN)"));
        assert!(dff.contains("setup_rising"));
        assert!(dff.contains("16.00"));
    }

    #[test]
    fn tables_have_matching_dimensions() {
        let lib = write_liberty("l", &sample());
        // 6 slew points → 6 quoted value rows per table.
        let cell_rise = lib.split("cell_rise").nth(1).unwrap();
        let values = cell_rise.split("values (").nth(1).unwrap();
        let block = values.split(");").next().unwrap();
        assert_eq!(block.matches('"').count(), 12, "6 rows, quoted twice");
    }

    #[test]
    fn braces_balance() {
        let lib = write_liberty("l", &sample());
        assert_eq!(lib.matches('{').count(), lib.matches('}').count());
    }
}
