//! Benchmarks the Fig. 12/13 kernel: the flow under shrinking routing-layer
//! budgets (`repro fig12` / `repro fig13` regenerate the figures).

use ffet_bench::BenchGroup;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("fig12_util_layers");
    group.sample_size(10);

    for n in [12u8, 6, 3] {
        let config = FlowConfig {
            pattern: RoutingPattern::new(n, n).expect("n <= 12"),
            back_pin_ratio: 0.5,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(&format!("flow_fm{n}bm{n}"), || {
            run_flow(&netlist, &library, &config).expect("flow runs")
        });
    }
    let legs = group.finish();
    ffet_bench::append_bench_ledger("fig12_util_layers", legs, t0.elapsed());
}
