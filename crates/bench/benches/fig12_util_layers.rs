//! Benchmarks the Fig. 12/13 kernel: the flow under shrinking routing-layer
//! budgets (`repro fig12` / `repro fig13` regenerate the figures).

use criterion::{criterion_group, criterion_main, Criterion};
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_util_layers");
    group.sample_size(10);

    for n in [12u8, 6, 3] {
        let config = FlowConfig {
            pattern: RoutingPattern::new(n, n).expect("n <= 12"),
            back_pin_ratio: 0.5,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library();
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(format!("flow_fm{n}bm{n}"), |b| {
            b.iter(|| black_box(run_flow(&netlist, &library, &config).expect("flow runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
