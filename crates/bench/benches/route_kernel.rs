//! Benchmarks the routing hot-path kernels on a congested reroute
//! workload: the pattern (L/Z-candidate) router, the retained allocating
//! full-grid maze reference, the scratch-backed full-grid maze, and the
//! production windowed maze. A fig11-class end-to-end flow leg tracks how
//! the kernel work shows up at the block level. Medians land in
//! `results/BENCH_route.json` so the speedup is recorded machine-readably
//! alongside the repro CSVs.

use ffet_bench::BenchGroup;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_geom::{Axis, Point, Rect, Rng64};
use ffet_netlist::NetId;
use ffet_pnr::maze::{self, MazeScratch};
use ffet_pnr::{pattern_path, route_nets_opts, RouteOpts, RoutingGrid, SideNet};
use ffet_tech::{RoutingPattern, Side, TechKind, Technology};
use std::time::{Duration, Instant};

/// A large congested grid: smooth background demand plus saturated
/// hotspot walls that force maze detours, seeded for reproducibility.
fn congested_grid(die_w: i64, die_h: i64, rng: &mut Rng64) -> RoutingGrid {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let mut grid = RoutingGrid::new(&tech, Rect::new(0, 0, die_w, die_h), pattern);
    for _ in 0..4_000 {
        let at = Point::new(rng.range_i64(0, die_w - 1), rng.range_i64(0, die_h - 1));
        let axis = if rng.next_u64() & 1 == 0 {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        let amount = if rng.next_u64().is_multiple_of(6) {
            30.0
        } else {
            2.0
        };
        grid.add_demand(Side::Front, grid.gcell_at(at), axis, amount);
    }
    grid
}

/// Reroute endpoints at realistic 2-pin connection lengths (a few dozen
/// GCells), spread across the congestion landscape.
fn reroute_pairs(die_w: i64, die_h: i64, rng: &mut Rng64, n: usize) -> Vec<(Point, Point)> {
    (0..n)
        .map(|_| {
            let from = Point::new(rng.range_i64(0, die_w - 1), rng.range_i64(0, die_h - 1));
            let dx = rng.range_i64(-40_000, 40_000);
            let dy = rng.range_i64(-30_000, 30_000);
            let to = Point::new(
                (from.x + dx).clamp(0, die_w - 1),
                (from.y + dy).clamp(0, die_h - 1),
            );
            (from, to)
        })
        .collect()
}

/// A batched-router workload: many seeded multi-pin nets over a congested
/// narrow-pattern grid, dense enough that the negotiation loop forms real
/// rip-up batches (the regime the `route_jobs` knob parallelizes).
fn batch_workload() -> (Technology, RoutingPattern, RoutingGrid, Vec<SideNet>) {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(2, 2).expect("legal");
    let (die_w, die_h) = (400_000i64, 300_000i64);
    let mut rng = Rng64::new(0xba7c4);
    let mut grid = RoutingGrid::new(&tech, Rect::new(0, 0, die_w, die_h), pattern);
    for _ in 0..2_000 {
        let at = Point::new(rng.range_i64(0, die_w - 1), rng.range_i64(0, die_h - 1));
        let side = if rng.next_u64() & 1 == 0 {
            Side::Front
        } else {
            Side::Back
        };
        let axis = if rng.next_u64() & 1 == 0 {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        let amount = if rng.next_u64().is_multiple_of(4) {
            30.0
        } else {
            2.0
        };
        let g = grid.gcell_at(at);
        grid.add_demand(side, g, axis, amount);
    }
    let nets = (0..260)
        .map(|i| {
            let side = if rng.next_u64() & 3 == 0 {
                Side::Back
            } else {
                Side::Front
            };
            let pins = (0..rng.range_usize(2, 4))
                .map(|_| Point::new(rng.range_i64(0, die_w - 1), rng.range_i64(0, die_h - 1)))
                .collect();
            SideNet {
                net: NetId(i as u32),
                side,
                pins,
                is_clock: false,
            }
        })
        .collect();
    (tech, pattern, grid, nets)
}

#[allow(clippy::print_stdout, clippy::print_stderr)] // bench harness output
fn main() {
    let t0 = Instant::now();
    let (die_w, die_h) = (600_000i64, 400_000i64);
    let mut rng = Rng64::new(0x50_07e5);
    let grid = congested_grid(die_w, die_h, &mut rng);
    let pairs = reroute_pairs(die_w, die_h, &mut rng, 48);

    let mut group = BenchGroup::new("route_kernel");
    group.sample_size(10);

    let pattern_med = group.bench_function_timed("pattern", || {
        pairs
            .iter()
            .map(|&(a, b)| pattern_path(&grid, Side::Front, a, b).len())
            .sum::<usize>()
    });
    let reference_med = group.bench_function_timed("maze_reference", || {
        pairs
            .iter()
            .map(|&(a, b)| maze::reference_path(&grid, Side::Front, a, b).map_or(0, |p| p.len()))
            .sum::<usize>()
    });
    let mut scratch = MazeScratch::new();
    let full_med = group.bench_function_timed("maze_scratch_full", || {
        pairs
            .iter()
            .map(|&(a, b)| {
                maze::maze_path_full(&grid, Side::Front, a, b, &mut scratch).map_or(0, |p| p.len())
            })
            .sum::<usize>()
    });
    let windowed_med = group.bench_function_timed("maze_windowed", || {
        pairs
            .iter()
            .map(|&(a, b)| {
                maze::maze_path(&grid, Side::Front, a, b, &mut scratch).map_or(0, |p| p.len())
            })
            .sum::<usize>()
    });

    // Block-level leg: the fig11-class dual-sided flow whose router time
    // the kernels above dominate.
    group.sample_size(5);
    let config = FlowConfig {
        pattern: RoutingPattern::new(12, 12).expect("static"),
        back_pin_ratio: 0.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let flow_med = group.bench_function_timed("fig11_flow", || {
        run_flow(&netlist, &library, &config).expect("flow runs")
    });
    let mut ledger_legs = group.finish();

    let speedup = reference_med.as_secs_f64() / windowed_med.as_secs_f64().max(1e-12);
    println!("route_kernel: windowed vs reference speedup {speedup:.2}x");

    let json = format!(
        "{{\n  \"pairs\": {},\n  \"grid_cells\": {},\n  \"pattern_ms\": {:.4},\n  \"maze_reference_ms\": {:.4},\n  \"maze_scratch_full_ms\": {:.4},\n  \"maze_windowed_ms\": {:.4},\n  \"windowed_vs_reference_speedup\": {:.3},\n  \"fig11_flow_ms\": {:.3}\n}}\n",
        pairs.len(),
        grid.cols * grid.rows,
        ms(pattern_med),
        ms(reference_med),
        ms(full_med),
        ms(windowed_med),
        speedup,
        ms(flow_med),
    );
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if let Err(e) =
        ffet_core::ckpt::atomic_write(&out_dir.join("BENCH_route.json"), json.as_bytes())
    {
        eprintln!("route_kernel: could not write BENCH_route.json: {e}");
    }

    // Parallel-batch leg: the full negotiated-congestion router on a
    // batch-forming workload, sequential vs 2 and 4 batch workers. The
    // routed result is bit-identical at every worker count (the
    // differential tests in crates/pnr/tests/parallel_route.rs prove it);
    // this leg records what the parallelism buys in wall-clock.
    let (tech, bpattern, bgrid, bnets) = batch_workload();
    let mut pgroup = BenchGroup::new("route_parallel");
    pgroup.sample_size(10);
    let mut batch_meds: Vec<(usize, Duration)> = Vec::new();
    for route_jobs in [1usize, 2, 4] {
        let opts = RouteOpts {
            route_jobs,
            ..RouteOpts::default()
        };
        let med = pgroup.bench_function_timed(&format!("batch_jobs_{route_jobs}"), || {
            let mut g = bgrid.clone();
            route_nets_opts(&tech, &mut g, &bnets, bpattern, &opts).via_count
        });
        batch_meds.push((route_jobs, med));
    }
    ledger_legs.extend(pgroup.finish());

    let seq_ms = ms(batch_meds[0].1);
    let legs = batch_meds
        .iter()
        .map(|&(jobs, med)| {
            format!(
                "    {{\"route_jobs\": {jobs}, \"median_ms\": {:.4}, \"speedup_vs_sequential\": {:.3}}}",
                ms(med),
                seq_ms / ms(med).max(1e-9),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // Speedup is only meaningful relative to the cores the machine
    // actually had — on a single-core host the parallel legs measure pure
    // dispatch overhead, so the artifact records the denominator.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let pjson = format!(
        "{{\n  \"nets\": {},\n  \"batch_size\": {},\n  \"host_cores\": {cores},\n  \"legs\": [\n{legs}\n  ]\n}}\n",
        bnets.len(),
        RouteOpts::default().batch_size,
    );
    if let Err(e) =
        ffet_core::ckpt::atomic_write(&out_dir.join("BENCH_route_parallel.json"), pjson.as_bytes())
    {
        eprintln!("route_kernel: could not write BENCH_route_parallel.json: {e}");
    }
    ffet_bench::append_bench_ledger("route_kernel", ledger_legs, t0.elapsed());
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
