//! Benchmarks the Table I pipeline: library construction (switch-level
//! characterization of every cell) and the KPI-diff computation itself.
//!
//! `repro table1` prints the actual table; this bench tracks how fast the
//! characterization engine is.

use criterion::{criterion_group, criterion_main, Criterion};
use ffet_cells::Library;
use ffet_tech::Technology;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_libchar");
    group.sample_size(20);

    group.bench_function("characterize_ffet_library", |b| {
        b.iter(|| black_box(Library::new(Technology::ffet_3p5t())));
    });
    group.bench_function("characterize_cfet_library", |b| {
        b.iter(|| black_box(Library::new(Technology::cfet_4t())));
    });
    group.bench_function("table1_kpi_diffs", |b| {
        b.iter(|| black_box(ffet_core::experiments::table1()));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
