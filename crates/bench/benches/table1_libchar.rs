//! Benchmarks the Table I pipeline: library construction (switch-level
//! characterization of every cell) and the KPI-diff computation itself.
//!
//! `repro table1` prints the actual table; this bench tracks how fast the
//! characterization engine is.

use ffet_bench::BenchGroup;
use ffet_cells::Library;
use ffet_tech::Technology;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("table1_libchar");
    group.sample_size(20);

    group.bench_function("characterize_ffet_library", || {
        Library::new(Technology::ffet_3p5t())
    });
    group.bench_function("characterize_cfet_library", || {
        Library::new(Technology::cfet_4t())
    });
    group.bench_function("table1_kpi_diffs", ffet_core::experiments::table1);
    let legs = group.finish();
    ffet_bench::append_bench_ledger("table1_libchar", legs, t0.elapsed());
}
