//! DoE execution-engine performance: the same seeded experiment dispatched
//! through the work-stealing pool at width 1 vs width 4, plus the pool's raw
//! dispatch overhead on trivial jobs. On a single-core runner the widths
//! tie (the engine adds no measurable overhead); on a multi-core runner the
//! width-4 leg shows the wall-clock win while producing byte-identical
//! tables.

use ffet_bench::BenchGroup;
use ffet_core::experiments::{self, DesignKind};
use ffet_core::runner::Pool;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("doe_runner");
    group.sample_size(5);

    group.bench_function("fig9_counter_jobs1", || {
        experiments::fig9_on(DesignKind::CounterSmall, &Pool::new(1))
    });
    group.bench_function("fig9_counter_jobs4", || {
        experiments::fig9_on(DesignKind::CounterSmall, &Pool::new(4))
    });

    // Raw engine overhead: 256 no-op jobs through the injector + stealing
    // machinery. This bounds the fixed cost a sweep point pays for being
    // scheduled rather than called directly.
    group.bench_function("dispatch_256_noop_jobs1", || {
        Pool::new(1).run((0..256usize).collect(), |&i| Ok::<usize, String>(i))
    });
    group.bench_function("dispatch_256_noop_jobs4", || {
        Pool::new(4).run((0..256usize).collect(), |&i| Ok::<usize, String>(i))
    });
    let legs = group.finish();
    ffet_bench::append_bench_ledger("doe_runner", legs, t0.elapsed());
}
