//! Checkpoint overhead on a fig11-class sweep: the same experiment run
//! bare vs with the full per-experiment checkpoint path (payload
//! serialization, content-addressed blob store, journal append, atomic CSV
//! publish). The sweep dominates; journaling one record per experiment is
//! targeted to cost < 3% wall clock, and `results/BENCH_ckpt.json` records
//! the measured overhead against that target.

use ffet_bench::BenchGroup;
use ffet_core::ckpt::{self, Journal, JournalFault, Store};
use ffet_core::experiments::{self, DesignKind};
use ffet_core::runner::Pool;
use std::time::{Duration, Instant};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[allow(clippy::print_stderr)] // bench harness output
fn main() {
    let t0 = Instant::now();
    let scratch = std::env::temp_dir().join(format!("ffet-bench-ckpt-{}", std::process::id()));
    let journal_path = scratch.join(ckpt::JOURNAL_FILE);
    let store = Store::new(&scratch);
    let pool = Pool::new(4);

    let mut group = BenchGroup::new("ckpt");
    group.sample_size(5);

    let bare_med = group.bench_function_timed("fig11_counter_bare", || {
        experiments::fig11_on(DesignKind::CounterSmall, &pool).means
    });

    let journaled_med = group.bench_function_timed("fig11_counter_journaled", || {
        let r = experiments::fig11_on(DesignKind::CounterSmall, &pool);
        let payload = ckpt::payload_json(
            "fig11",
            &r.table.to_csv(),
            &r.runlog,
            &ckpt::trace_fragment(&r.traces),
        );
        let addr = store.put(&payload).expect("store put");
        let mut journal = Journal::default();
        journal
            .append(&journal_path, "fig11", "bench", &addr, JournalFault::None)
            .expect("journal append");
        ckpt::atomic_write(&scratch.join("fig11.csv"), r.table.to_csv().as_bytes())
            .expect("atomic csv");
        r.means
    });

    // Replay leg: what `--resume` pays instead of recomputing the sweep.
    let replay_med = group.bench_function_timed("fig11_counter_replay", || {
        let journal = Journal::recover(&journal_path).expect("recover");
        let rec = journal.lookup("fig11", "bench").expect("record");
        let body = store.get(&rec.blob).expect("blob");
        ckpt::parse_payload("fig11", &body)
            .expect("payload")
            .rows
            .len()
    });
    let legs = group.finish();

    let overhead_pct = (ms(journaled_med) - ms(bare_med)) / ms(bare_med).max(1e-9) * 100.0;
    let json = format!(
        "{{\n  \"experiment\": \"fig11_counter\",\n  \"bare_median_ms\": {:.4},\n  \
         \"journaled_median_ms\": {:.4},\n  \"replay_median_ms\": {:.4},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"overhead_target_pct\": 3.0,\n  \
         \"overhead_within_target\": {}\n}}\n",
        ms(bare_med),
        ms(journaled_med),
        ms(replay_med),
        overhead_pct <= 3.0,
    );
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if let Err(e) = ckpt::atomic_write(&out_dir.join("BENCH_ckpt.json"), json.as_bytes()) {
        eprintln!("ckpt: could not write BENCH_ckpt.json: {e}");
    }
    ffet_bench::append_bench_ledger("ckpt", legs, t0.elapsed());
    let _ = std::fs::remove_dir_all(&scratch);
}
