//! Benchmarks the Fig. 8 kernel: one full flow run per technology at a
//! fixed utilization (the area-vs-utilization experiment is this kernel
//! swept over a grid — `repro fig8` regenerates the actual figure).

use ffet_bench::BenchGroup;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("fig8_area_utilization");
    group.sample_size(10);

    for (name, config) in [
        ("cfet_fm12", FlowConfig::baseline(TechKind::Cfet4t)),
        ("ffet_fm12", FlowConfig::baseline(TechKind::Ffet3p5t)),
        (
            "ffet_fm12bm12",
            FlowConfig {
                pattern: RoutingPattern::new(12, 12).expect("static"),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ] {
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(&format!("flow_{name}_util70"), || {
            run_flow(&netlist, &library, &config).expect("flow runs")
        });
    }
    let legs = group.finish();
    ffet_bench::append_bench_ledger("fig8_area_utilization", legs, t0.elapsed());
}
