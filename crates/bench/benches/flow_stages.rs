//! Per-stage performance of the physical-implementation flow on the real
//! RV32 benchmark: placement, CTS, dual-sided routing, DEF merge, RC
//! extraction and STA — the numbers that determine how long the paper's
//! experiment sweeps take.

use ffet_bench::BenchGroup;
use ffet_cells::Library;
use ffet_core::designs;
use ffet_lefdef::merge_defs;
use ffet_pnr::{
    decompose_nets, export_defs, floorplan, place, powerplan, route_nets, synthesize_clock_tree,
    RoutingGrid,
};
use ffet_rcx::extract_net;
use ffet_sta::{analyze_timing, StaConfig};
use ffet_tech::{RoutingPattern, Technology};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("flow_stages");
    group.sample_size(10);

    let mut library = Library::new(Technology::ffet_3p5t());
    library.redistribute_input_pins(0.5, 42).expect("ffet");
    let pattern = RoutingPattern::new(6, 6).expect("static");

    // Shared pre-computed stages (built once, benched individually).
    let mut netlist = designs::rv32_core(&library);
    let fp = floorplan(&netlist, &library, 0.7, 1.0).expect("floorplan");
    let pp = powerplan(&fp, &library, pattern);

    group.bench_function("rv32_generate", || designs::rv32_core(&library));
    group.bench_function("placement_rv32", || place(&netlist, &library, &fp, &pp, 42));

    let pl = place(&netlist, &library, &fp, &pp, 42);
    group.bench_function("cts_rv32", || {
        let mut nl = netlist.clone();
        synthesize_clock_tree(&mut nl, &library, &pl).expect("cts")
    });
    synthesize_clock_tree(&mut netlist, &library, &pl).expect("cts");
    let fp = floorplan(&netlist, &library, 0.7, 1.0).expect("floorplan");
    let pp = powerplan(&fp, &library, pattern);
    let pl = place(&netlist, &library, &fp, &pp, 42);
    let side_nets = decompose_nets(&netlist, &library, &pl, pattern).expect("decompose");

    group.bench_function("dual_sided_routing_rv32", || {
        let mut grid = RoutingGrid::new(library.tech(), fp.die, pattern);
        route_nets(library.tech(), &mut grid, &side_nets, pattern)
    });

    // The same kernel with an ambient ffet-obs collector recording its
    // spans and metrics. Comparing this line against the one above shows
    // the tracing overhead directly (the contract is < 5%; CI enforces it
    // through the ignored `tracing_overhead_is_under_five_percent` test).
    group.bench_function("dual_sided_routing_rv32_traced", || {
        let collector = ffet_obs::Collector::new();
        let routing = {
            let _guard = collector.install();
            let mut grid = RoutingGrid::new(library.tech(), fp.die, pattern);
            route_nets(library.tech(), &mut grid, &side_nets, pattern)
        };
        (routing, collector.finish())
    });

    let mut grid = RoutingGrid::new(library.tech(), fp.die, pattern);
    let routing = route_nets(library.tech(), &mut grid, &side_nets, pattern);
    let (front, back) = export_defs(&netlist, &library, &fp, &pp, &pl, &routing);
    group.bench_function("def_merge_rv32", || {
        merge_defs(&front, &back).expect("merge")
    });

    let merged = merge_defs(&front, &back).expect("merge");
    group.bench_function("rc_extraction_rv32", || {
        let mut total = 0.0f64;
        for net in &merged.nets {
            // Extraction without pin mapping: source at the first wire end.
            if let Some(w) = net.wires.first() {
                let p = extract_net(net, library.tech(), w.from, &[w.to]);
                total += p.total_cap_ff;
            }
        }
        total
    });

    let parasitics = vec![None; netlist.nets().len()];
    group.bench_function("sta_rv32_no_wires", || {
        analyze_timing(&netlist, &library, &parasitics, &StaConfig::default()).expect("levelizes")
    });
    let legs = group.finish();
    ffet_bench::append_bench_ledger("flow_stages", legs, t0.elapsed());
}
