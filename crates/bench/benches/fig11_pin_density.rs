//! Benchmarks the Fig. 11 kernel: pin redistribution plus a dual-sided
//! flow run per backside-density DoE (`repro fig11` regenerates the
//! figure's full utilization sweep).

use ffet_bench::BenchGroup;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("fig11_pin_density");
    group.sample_size(10);

    for bp in [0.04f64, 0.3, 0.5] {
        let config = FlowConfig {
            pattern: RoutingPattern::new(12, 12).expect("static"),
            back_pin_ratio: bp,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(&format!("doe_bp{bp:.2}"), || {
            run_flow(&netlist, &library, &config).expect("flow runs")
        });
    }
    // The redistribution step itself.
    group.bench_function("redistribute_input_pins", || {
        let mut lib = ffet_cells::Library::new(ffet_tech::Technology::ffet_3p5t());
        lib.redistribute_input_pins(0.5, 42)
            .expect("ffet supports backside");
        lib
    });
    let legs = group.finish();
    ffet_bench::append_bench_ledger("fig11_pin_density", legs, t0.elapsed());
}
