//! Benchmarks the Fig. 11 kernel: pin redistribution plus a dual-sided
//! flow run per backside-density DoE (`repro fig11` regenerates the
//! figure's full utilization sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_pin_density");
    group.sample_size(10);

    for bp in [0.04f64, 0.3, 0.5] {
        let config = FlowConfig {
            pattern: RoutingPattern::new(12, 12).expect("static"),
            back_pin_ratio: bp,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library();
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(format!("doe_bp{bp:.2}"), |b| {
            b.iter(|| black_box(run_flow(&netlist, &library, &config).expect("flow runs")));
        });
    }
    // The redistribution step itself.
    group.bench_function("redistribute_input_pins", |b| {
        b.iter(|| {
            let mut lib = ffet_cells::Library::new(ffet_tech::Technology::ffet_3p5t());
            lib.redistribute_input_pins(0.5, 42).expect("ffet supports backside");
            black_box(lib)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
