//! Benchmarks the Fig. 9 kernel: synthesis-target sensitivity of the flow
//! (relaxed vs tight target — the figure sweeps this from 0.5 to 3 GHz;
//! `repro fig9` regenerates the actual series).

use ffet_bench::BenchGroup;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::TechKind;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut group = BenchGroup::new("fig9_power_frequency");
    group.sample_size(10);

    for target in [0.5f64, 1.5, 3.0] {
        let config = FlowConfig {
            utilization: 0.76,
            target_freq_ghz: target,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        group.bench_function(&format!("ffet_fm12_target_{target}ghz"), || {
            run_flow(&netlist, &library, &config).expect("flow runs")
        });
    }
    let legs = group.finish();
    ffet_bench::append_bench_ledger("fig9_power_frequency", legs, t0.elapsed());
}
