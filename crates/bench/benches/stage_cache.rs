//! Stage-cache payoff on a fig11-class sweep: the same experiment run
//! cold (empty cache, every stage computes and stores) vs warm (every
//! point replays its stages from the content-addressed store, DESIGN
//! §14). The warm rerun must both be faster and execute ≥ 30% fewer
//! stage invocations; `results/BENCH_stage_cache.json` records the
//! measured wall times, stage-invocation counts, and whether the
//! reduction target held.

use ffet_bench::BenchGroup;
use ffet_core::ckpt;
use ffet_core::experiments::{self, DesignKind};
use ffet_core::runner::Pool;
use std::time::{Duration, Instant};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Sums every `cache.{kind}.*` counter from the process-global registry.
fn stat_total(kind: &str) -> u64 {
    let prefix = format!("cache.{kind}.");
    ffet_obs::cache_stats()
        .iter()
        .filter(|(name, _)| name.starts_with(&prefix))
        .map(|&(_, n)| n)
        .sum()
}

#[allow(clippy::print_stderr, clippy::cast_precision_loss)] // bench harness output
fn main() {
    let t0 = Instant::now();
    let scratch = std::env::temp_dir().join(format!("ffet-bench-scache-{}", std::process::id()));
    let objects = scratch.join("objects");
    // Configs are built deep inside the experiment runners and read the
    // cache root from the env; set it before any flow runs (the bench is
    // single-threaded here, pool workers only read configs handed to them).
    std::env::set_var(ffet_core::STAGE_CACHE_ENV, &objects);
    let pool = Pool::new(4);

    // Instrumented single runs first: a cold run's misses count the stage
    // invocations it executed; the warm rerun's misses count what the
    // cache could not absorb. The ≥30% reduction claim is about these
    // counts, not wall clock.
    ffet_obs::cache_stats_reset();
    let _ = experiments::fig11_on(DesignKind::CounterSmall, &pool);
    let cold_execs = stat_total("miss");
    let cold_hits = stat_total("hit");
    ffet_obs::cache_stats_reset();
    let _ = experiments::fig11_on(DesignKind::CounterSmall, &pool);
    let warm_execs = stat_total("miss");
    let warm_hits = stat_total("hit");
    let reduction_pct = if cold_execs > 0 {
        (1.0 - warm_execs as f64 / cold_execs as f64) * 100.0
    } else {
        0.0
    };

    let mut group = BenchGroup::new("stage_cache");
    group.sample_size(5);

    let cold_med = group.bench_function_timed("fig11_counter_cold", || {
        // Wiping the store inside the closure keeps every sample cold;
        // the removal itself is microseconds against a sweep.
        let _ = std::fs::remove_dir_all(&objects);
        experiments::fig11_on(DesignKind::CounterSmall, &pool).means
    });

    // The harness's untimed warmup call primes the store, so every timed
    // sample replays from a fully warm cache.
    let warm_med = group.bench_function_timed("fig11_counter_warm", || {
        experiments::fig11_on(DesignKind::CounterSmall, &pool).means
    });
    let legs = group.finish();

    let speedup = ms(cold_med) / ms(warm_med).max(1e-9);
    let json = format!(
        "{{\n  \"experiment\": \"fig11_counter\",\n  \"cold_median_ms\": {:.4},\n  \
         \"warm_median_ms\": {:.4},\n  \"warm_speedup\": {speedup:.3},\n  \
         \"cold_stage_execs\": {cold_execs},\n  \"cold_stage_hits\": {cold_hits},\n  \
         \"warm_stage_execs\": {warm_execs},\n  \"warm_stage_hits\": {warm_hits},\n  \
         \"stage_exec_reduction_pct\": {reduction_pct:.3},\n  \
         \"reduction_target_pct\": 30.0,\n  \"reduction_within_target\": {}\n}}\n",
        ms(cold_med),
        ms(warm_med),
        reduction_pct >= 30.0,
    );
    let out = ffet_bench::results_dir().join("BENCH_stage_cache.json");
    if let Err(e) = ckpt::atomic_write(&out, json.as_bytes()) {
        eprintln!("stage_cache: could not write BENCH_stage_cache.json: {e}");
    }
    ffet_bench::append_bench_ledger("stage_cache", legs, t0.elapsed());
    let _ = std::fs::remove_dir_all(&scratch);
}
