//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--jobs N] [--route-jobs N] [--design counter|rv32] [--max-attempts N]
//!       [--deadline SECS] [--resume] [--no-cache] <experiment>
//!                      # table1 table2 fig4 fig8 fig9 fig10 fig11 table3 fig12 fig13 ablation
//! repro all            # everything
//! repro sanity         # one FFET + one CFET baseline run, printed verbosely
//! repro trace [point]  # render one point of results/trace.jsonl (or list points)
//! ```
//!
//! Flow experiments run on the parallel DoE engine; `--jobs` (or the
//! `FFET_JOBS` env var) sets the worker count, defaulting to the machine's
//! available parallelism. `--route-jobs` (or `FFET_ROUTE_JOBS`) sets the
//! *intra-point* worker count of the router's batched rip-up rounds,
//! defaulting to the DoE pool width. Tables and CSVs are byte-identical for
//! every combination of both worker counts; per-job telemetry lands in
//! `results/runlog.csv`, and every
//! flow point's spans + metrics land in `results/trace.jsonl` and
//! `results/metrics.json` (schema in DESIGN.md §9). `--design counter`
//! (or `FFET_DESIGN=counter`) switches the flow experiments to the fast
//! CounterSmall smoke design.
//!
//! Every flow point runs through the staged recovery ladder of
//! [`ffet_core::run_flow_resilient`]; `--max-attempts` (or the
//! `FFET_MAX_ATTEMPTS` env var) bounds the attempts per point, and the
//! `FFET_FAULTS` env var injects deterministic faults (see DESIGN.md §8).
//! `--deadline SECS` (or `FFET_DEADLINE`) arms a cooperative per-attempt
//! watchdog whose expiry lands a `timeout(stage)` disposition.
//!
//! Every artifact is written atomically (tmp + rename), and every
//! completed experiment is journaled into the `results/ckpt/` checkpoint
//! store. `--resume` replays experiments whose journal records validate,
//! producing artifacts byte-identical (modulo the `timing` key) to an
//! uninterrupted run — see DESIGN.md §12.
//!
//! Flow stages are memoized through the content-addressed stage cache
//! (`results/ckpt/objects/`, DESIGN §14): a warm rerun replays unchanged
//! stages byte-identically instead of recomputing them. The cache defaults
//! ON for this driver; `--no-cache` (or `FFET_STAGE_CACHE=0`) disables it,
//! and `FFET_STAGE_CACHE=<dir>` redirects it. Hit/miss/store counters land
//! under the `timing.cache` key of `results/metrics.json` and as
//! `cache_hit_rate_<stage>` pairs in the ledger's `timing.stages`.
//!
//! Every sweep invocation additionally appends one checksummed record to
//! the cross-run performance ledger (`results/ledger/ledger.jsonl`): the
//! timing-stripped metric snapshot and its digest, plus pool widths and
//! wall/stage times under a `timing` key. The `ffet` binary's
//! `perf compare`/`perf report` subcommands consume it — see DESIGN.md §13.

// The repro binary is the user-facing CLI: stdout/stderr are its output
// channel. Library crates must go through ffet-obs instead.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ffet_core::ckpt::{self, Journal, JournalFault, Store};
use ffet_core::experiments::{self, DesignKind, ExpTable};
use ffet_core::runner::{Pool, RunLog, RunLogRow};
use ffet_core::FaultPlan;
use ffet_obs::{LabeledPoint, RunArtifacts};
use std::env;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Prints the table and drops its CSV into `results/` for plotting.
/// A failed write is a hard error: silently missing CSVs corrupt every
/// downstream plotting script.
fn emit(name: &str, table: &ExpTable) -> std::io::Result<()> {
    print!("{}", table.render());
    let path = format!("results/{name}.csv");
    ckpt::atomic_write(Path::new(&path), table.to_csv().as_bytes())?;
    eprintln!("wrote {path}");
    Ok(())
}

/// One experiment's outputs: the printable/plottable table plus the DoE
/// engine's per-job telemetry and per-point traces (both empty for the
/// analytic tables).
struct ExpRun {
    table: ExpTable,
    rows: Vec<RunLogRow>,
    traces: Vec<LabeledPoint>,
}

fn run_one(name: &str, design: DesignKind, pool: &Pool) -> Option<ExpRun> {
    let (table, rows, traces) = match name {
        "table1" => (experiments::table1().table, Vec::new(), Vec::new()),
        "table2" => (experiments::table2().table, Vec::new(), Vec::new()),
        "fig4" => (experiments::fig4().table, Vec::new(), Vec::new()),
        "fig8" => {
            let r = experiments::fig8_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "fig9" => {
            let r = experiments::fig9_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "fig10" => {
            let r = experiments::fig10_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "fig11" => {
            let r = experiments::fig11_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "table3" => {
            let r = experiments::table3_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "fig12" => {
            let r = experiments::fig12_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "fig13" => {
            let r = experiments::fig13_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        "ablation" => {
            let r = experiments::bridging_ablation_on(design, pool);
            (r.table, r.runlog, r.traces)
        }
        _ => return None,
    };
    Some(ExpRun {
        table,
        rows,
        traces,
    })
}

const ALL: [&str; 11] = [
    "table1", "table2", "fig4", "fig8", "fig9", "fig10", "fig11", "table3", "fig12", "fig13",
    "ablation",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N] [--route-jobs N] [--design counter|rv32] [--max-attempts N] \
         [--deadline SECS] [--resume] [--no-cache] \
         <sanity|calib|hotspots|critpath|table1|table2|fig4|fig8|fig9|fig10|fig11|table3|fig12|fig13|ablation|all>\n\
         \x20      repro trace [point]   # render one point of results/trace.jsonl"
    );
    std::process::exit(2);
}

/// Writes one artifact file under `results/` atomically (tmp + rename),
/// creating the directory first.
fn write_artifact(path: &str, body: &str, failed: &mut bool) {
    match ckpt::atomic_write(Path::new(path), body.as_bytes()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("error: could not write {path}: {e}");
            *failed = true;
        }
    }
}

// --- checkpoint/resume plumbing (DESIGN.md §12) ---

/// Everything the sweep loop needs to journal completed experiments and to
/// replay them on `--resume`. Absent (`None`) for non-sweep subcommands so
/// `repro sanity`/`repro trace` never touch the journal.
struct Ckpt {
    store: Store,
    journal: Journal,
    path: PathBuf,
    /// Fault injected into journal appends (`ckpt-torn-write`/`ckpt-stale`).
    fault: JournalFault,
    /// Config-signature hash; records from a different config are ignored.
    cfg: String,
}

/// One performance-ledger record for this invocation (DESIGN §13):
/// deterministic metric snapshot + digest outside `timing`, pool widths
/// and wall/stage times inside it. Appended for every sweep run so
/// `results/ledger/ledger.jsonl` accumulates the cross-run trajectory
/// that `ffet perf compare`/`report` consume.
fn ledger_entry(
    arg: &str,
    design: DesignKind,
    cfg: &str,
    pool: &Pool,
    log: &RunLog,
    artifacts: &RunArtifacts,
) -> ffet_obs::LedgerEntry {
    let metrics_body = artifacts.metrics_json();
    let digest = match ffet_obs::strip_timing(&metrics_body) {
        Ok(stripped) => ffet_obs::hash_hex(ffet_obs::fnv1a64(stripped.as_bytes())),
        Err(e) => {
            eprintln!("warning: could not strip timing for ledger digest: {e}");
            String::new()
        }
    };
    let mut entry = ffet_obs::LedgerEntry::from_metrics(
        "repro",
        arg,
        &format!("{design:?}"),
        cfg,
        &digest,
        &artifacts.merged_metrics(),
    );
    entry.timing.jobs = pool.width() as i64;
    entry.timing.route_jobs = env::var(ffet_core::ROUTE_JOBS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(pool.width() as i64);
    entry.timing.host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as i64);
    entry.timing.wall_ms = artifacts.wall_ms;
    // Aggregate per-stage wall time across every flow point that reported
    // stage telemetry.
    let mut stages: [(&str, f64); 6] = [
        ("synth_ms", 0.0),
        ("pnr_ms", 0.0),
        ("merge_ms", 0.0),
        ("signoff_ms", 0.0),
        ("rcx_ms", 0.0),
        ("sta_ms", 0.0),
    ];
    for row in &log.rows {
        if let Some(s) = &row.stages {
            for (name, total) in &mut stages {
                *total += match *name {
                    "synth_ms" => s.synth_ms,
                    "pnr_ms" => s.pnr_ms,
                    "merge_ms" => s.merge_ms,
                    "signoff_ms" => s.signoff_ms,
                    "rcx_ms" => s.rcx_ms,
                    _ => s.sta_ms,
                };
            }
        }
    }
    entry.timing.stages = stages
        .iter()
        .filter(|(_, total)| *total > 0.0)
        .map(|&(name, total)| (name.to_owned(), total))
        .collect();
    // Per-stage cache hit-rates ride as named pairs inside `timing.stages`
    // (schema-compatible). Hit/miss counts are scheduling-dependent —
    // racing identical-prefix points may both miss — so they belong with
    // the timings, not the deterministic snapshot (DESIGN §14).
    let count = |kind: &str, stage: &str| -> u64 {
        let key = format!("cache.{kind}.{stage}");
        artifacts
            .cache
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, v)| v)
    };
    let (mut total_hits, mut total_misses) = (0u64, 0u64);
    #[allow(clippy::cast_precision_loss)]
    for stage in ["synth", "pnr", "merge", "signoff", "rcx", "sta"] {
        let (hits, misses) = (count("hit", stage), count("miss", stage));
        total_hits += hits;
        total_misses += misses;
        if hits + misses > 0 {
            let rate = hits as f64 / (hits + misses) as f64;
            entry
                .timing
                .stages
                .push((format!("cache_hit_rate_{stage}"), rate));
        }
    }
    if total_hits + total_misses > 0 {
        #[allow(clippy::cast_precision_loss)]
        let rate = total_hits as f64 / (total_hits + total_misses) as f64;
        entry
            .timing
            .stages
            .push(("cache_hit_rate".to_owned(), rate));
    }
    entry
}

/// `repro trace [point]`: renders one point of `results/trace.jsonl` as a
/// per-stage summary (span tree + hottest spans + metrics), or lists the
/// available point labels. `point` may be an exact label or any unique
/// substring of one.
fn trace_cmd(query: Option<&str>) -> i32 {
    let path = "results/trace.jsonl";
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e} (run a flow experiment first)");
            return 1;
        }
    };
    let labels = ffet_obs::point_labels(&text);
    let Some(query) = query else {
        println!("{} point(s) in {path}:", labels.len());
        for label in &labels {
            println!("  {label}");
        }
        return 0;
    };
    let resolved = if labels.iter().any(|l| l == query) {
        query.to_owned()
    } else {
        let matches: Vec<&String> = labels.iter().filter(|l| l.contains(query)).collect();
        match matches.as_slice() {
            [one] => (*one).clone(),
            [] => {
                eprintln!("error: no point matching {query:?}; available points:");
                for label in &labels {
                    eprintln!("  {label}");
                }
                return 1;
            }
            many => {
                eprintln!("error: {query:?} is ambiguous; it matches:");
                for label in many {
                    eprintln!("  {label}");
                }
                return 1;
            }
        }
    };
    match ffet_obs::parse_point(&text, &resolved) {
        Ok(data) => {
            print!(
                "{}",
                ffet_obs::render_point(&resolved, &data.events, &data.metrics)
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut resume = false;
    let mut no_cache = false;
    let mut design = match env::var("FFET_DESIGN").as_deref() {
        Ok("counter") => DesignKind::CounterSmall,
        _ => DesignKind::Rv32,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => usage(),
            },
            "--design" => match args.next().as_deref() {
                Some("counter") => design = DesignKind::CounterSmall,
                Some("rv32") => design = DesignKind::Rv32,
                _ => usage(),
            },
            // Configs are built from the environment deep inside the
            // experiment runners, so the flag travels as the env var it
            // aliases.
            "--max-attempts" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => env::set_var(ffet_core::MAX_ATTEMPTS_ENV, n.to_string()),
                _ => usage(),
            },
            "--route-jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => env::set_var(ffet_core::ROUTE_JOBS_ENV, n.to_string()),
                _ => usage(),
            },
            "--deadline" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s.is_finite() && s > 0.0 => {
                    env::set_var(ffet_core::DEADLINE_ENV, s.to_string());
                }
                _ => usage(),
            },
            "--resume" => resume = true,
            "--no-cache" => no_cache = true,
            name if !name.starts_with('-') => positional.push(name.to_owned()),
            _ => usage(),
        }
    }
    // The stage cache (DESIGN §14) defaults ON for this driver. Configs
    // read the env deep inside the experiment runners, so the knob travels
    // as the env var it aliases — set here while still single-threaded.
    if no_cache {
        env::set_var(ffet_core::STAGE_CACHE_ENV, "0");
    } else if env::var(ffet_core::STAGE_CACHE_ENV).is_err() {
        env::set_var(ffet_core::STAGE_CACHE_ENV, "1");
    }
    let arg = positional.first().cloned().unwrap_or_else(|| "help".into());
    if arg == "trace" {
        std::process::exit(trace_cmd(positional.get(1).map(String::as_str)));
    }
    if positional.len() > 1 {
        usage();
    }
    let pool = jobs.map_or_else(Pool::from_env, Pool::new);

    let t0 = Instant::now();
    let mut log = RunLog::new(pool.width());
    let mut artifacts = RunArtifacts::new(pool.width());
    let mut failed = false;
    // The journal only exists for sweep runs; `sanity`/`calib`/`trace`
    // must neither reset nor extend it.
    let mut ckpt_ctx: Option<Ckpt> = if arg == "all" || ALL.contains(&arg.as_str()) {
        let path = Path::new(ckpt::CKPT_DIR).join(ckpt::JOURNAL_FILE);
        let plan = FaultPlan::from_env();
        let fault = if plan.has_ckpt_torn() {
            JournalFault::TornWrite
        } else if plan.has_ckpt_stale() {
            JournalFault::StaleHash
        } else {
            JournalFault::None
        };
        let journal = if resume {
            let j = match Journal::recover(&path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!(
                        "warning: could not recover {}: {e}; starting fresh",
                        path.display()
                    );
                    Journal::default()
                }
            };
            if j.torn + j.corrupt > 0 {
                eprintln!(
                    "ckpt: discarded {} torn + {} corrupt journal record(s)",
                    j.torn, j.corrupt
                );
            }
            eprintln!("ckpt: resuming with {} valid record(s)", j.records.len());
            j
        } else {
            if let Err(e) = Journal::reset(&path) {
                eprintln!("warning: could not reset {}: {e}", path.display());
            }
            Journal::default()
        };
        Some(Ckpt {
            store: Store::new(ckpt::CKPT_DIR),
            journal,
            path,
            fault,
            cfg: ckpt::config_signature(design),
        })
    } else {
        None
    };
    let run_and_emit = |name: &str,
                        log: &mut RunLog,
                        artifacts: &mut RunArtifacts,
                        ckpt_ctx: &mut Option<Ckpt>,
                        failed: &mut bool|
     -> bool {
        let t = Instant::now();
        // Resume path: a validated journal record short-circuits the whole
        // experiment; its payload replays the exact CSV, runlog rows and
        // trace fragment the original run produced.
        if let Some(c) = ckpt_ctx.as_mut() {
            if let Some(replayed) = c
                .journal
                .lookup(name, &c.cfg)
                .and_then(|rec| c.store.get(&rec.blob))
                .and_then(|body| ckpt::parse_payload(name, &body))
            {
                let path = format!("results/{name}.csv");
                match ckpt::atomic_write(Path::new(&path), replayed.csv.as_bytes()) {
                    Ok(()) => eprintln!("wrote {path} (replayed from checkpoint)"),
                    Err(e) => {
                        eprintln!("error: could not write {path}: {e}");
                        *failed = true;
                    }
                }
                artifacts.extend(replayed.traces);
                log.record_experiment(name, replayed.rows, t.elapsed());
                eprintln!(
                    "[{name}: {:?}, {} (replayed)]",
                    t.elapsed(),
                    log.summary(name)
                );
                return true;
            }
        }
        let Some(run) = run_one(name, design, &pool) else {
            return false;
        };
        if let Err(e) = emit(name, &run.table) {
            eprintln!("error: could not write results/{name}.csv: {e}");
            *failed = true;
        }
        // Journal the completed experiment before its outputs are consumed.
        // A journal failure degrades resumability but never the run itself.
        if let Some(c) = ckpt_ctx.as_mut() {
            let payload = ckpt::payload_json(
                name,
                &run.table.to_csv(),
                &run.rows,
                &ckpt::trace_fragment(&run.traces),
            );
            let journaled = c
                .store
                .put(&payload)
                .and_then(|addr| c.journal.append(&c.path, name, &c.cfg, &addr, c.fault));
            if let Err(e) = journaled {
                eprintln!("warning: could not journal {name}: {e}");
            }
        }
        artifacts.extend(run.traces);
        log.record_experiment(name, run.rows, t.elapsed());
        eprintln!("[{name}: {:?}, {}]", t.elapsed(), log.summary(name));
        true
    };
    match arg.as_str() {
        "sanity" => sanity(),
        "calib" => calib(),
        "hotspots" => hotspots(),
        "critpath" => critpath(),
        "all" => {
            for name in ALL {
                run_and_emit(name, &mut log, &mut artifacts, &mut ckpt_ctx, &mut failed);
            }
        }
        other if run_and_emit(other, &mut log, &mut artifacts, &mut ckpt_ctx, &mut failed) => {}
        _ => usage(),
    }
    // Stage-cache hit/miss/store counts are process-global and depend on
    // prior disk state, so they ride in the stripped `timing` section of
    // metrics.json rather than the deterministic metric plane (DESIGN §14).
    artifacts.cache = ffet_obs::cache_stats();
    if !log.rows.is_empty() {
        write_artifact("results/runlog.csv", &log.to_csv(), &mut failed);
    }
    if !artifacts.is_empty() {
        artifacts.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        write_artifact("results/trace.jsonl", &artifacts.trace_jsonl(), &mut failed);
        write_artifact(
            "results/metrics.json",
            &artifacts.metrics_json(),
            &mut failed,
        );
    }
    // Every sweep invocation appends one record to the cross-run ledger
    // (DESIGN §13). A ledger failure degrades observability, not the run.
    if let Some(c) = &ckpt_ctx {
        artifacts.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let entry = ledger_entry(&arg, design, &c.cfg, &pool, &log, &artifacts);
        let path = Path::new(ffet_obs::ledger::LEDGER_PATH);
        match ffet_obs::Ledger::append(path, &entry) {
            Ok(()) => eprintln!("appended ledger entry to {}", path.display()),
            Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
        }
    }
    eprintln!("[{:?}] done", t0.elapsed());
    if failed {
        std::process::exit(1);
    }
}

fn calib() {
    use ffet_core::{designs, run_flow, FlowConfig};
    use ffet_tech::{RoutingPattern, TechKind};
    let configs = [
        ("CFET-FM12", FlowConfig::baseline(TechKind::Cfet4t)),
        ("FFET-FM12", FlowConfig::baseline(TechKind::Ffet3p5t)),
        (
            "FFET-12+12",
            FlowConfig {
                pattern: RoutingPattern::new(12, 12).expect("static"),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ];
    println!("config      util  drv(route+place)  overflow  peak  wl_mm  freq  power");
    for (label, base) in configs {
        let library = base.build_library().expect("valid config");
        let netlist = designs::rv32_core(&library);
        for util in [0.60, 0.68, 0.72, 0.76, 0.80, 0.84, 0.88, 0.92] {
            let mut rows: Vec<(u32, u32, f64, f64, f64, f64, f64)> = Vec::new();
            for seed in [42u64, 1042, 9042] {
                let config = FlowConfig {
                    utilization: util,
                    seed,
                    ..base.clone()
                };
                match run_flow(&netlist, &library, &config) {
                    Ok(o) => rows.push((
                        o.pnr.routing.drv_count,
                        o.pnr.placement.violations,
                        o.pnr.routing.overflow_tracks,
                        o.pnr.routing.peak_congestion,
                        o.report.wirelength_mm,
                        o.report.achieved_freq_ghz,
                        o.report.power_mw,
                    )),
                    Err(e) => println!("{label:11} {util:.2}  ERROR {e}"),
                }
            }
            if rows.is_empty() {
                continue;
            }
            rows.sort_by_key(|r| r.0 + r.1);
            let m = rows[0];
            println!(
                "{label:11} {util:.2}  {:5}+{:<5}       {:8.1}  {:.2}  {:5.2}  {:.3}  {:.3}   (all drv: {:?})",
                m.0, m.1, m.2, m.3, m.4, m.5, m.6,
                rows.iter().map(|r| r.0 + r.1).collect::<Vec<_>>(),
            );
        }
    }
}

fn sanity() {
    use ffet_core::{designs, run_flow_resilient, FlowConfig, PointDisposition};
    use ffet_tech::{RoutingPattern, TechKind};

    let (mut clean, mut recovered, mut failed, mut extra) = (0u32, 0u32, 0u32, 0u32);
    for (label, config) in [
        ("CFET FM12 baseline", FlowConfig::baseline(TechKind::Cfet4t)),
        (
            "FFET FM12 single-sided",
            FlowConfig::baseline(TechKind::Ffet3p5t),
        ),
        (
            "FFET FM12BM12 FP0.5BP0.5",
            FlowConfig {
                pattern: RoutingPattern::new(12, 12).expect("static"),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ] {
        let t = Instant::now();
        let library = config.build_library().expect("valid config");
        let netlist = designs::rv32_core(&library);
        let r = run_flow_resilient(&netlist, &library, &config);
        match r.recovery.disposition {
            PointDisposition::Clean => clean += 1,
            PointDisposition::Recovered(_) => recovered += 1,
            PointDisposition::Failed(_) => failed += 1,
        }
        extra += r.recovery.disposition.extra_attempts();
        match r.outcome {
            Ok(outcome) => {
                println!(
                    "{label}: {} [{}]",
                    outcome.report.summary(),
                    r.recovery.disposition.to_cell()
                );
                println!(
                    "  wl {:.3} mm (back {:.3}), hpwl {:.3} mm, peak cong {:.2}, vias {}, cells {}, [{:?}]",
                    outcome.report.wirelength_mm,
                    outcome.report.back_wirelength_mm,
                    outcome.pnr.placement.hpwl_nm as f64 / 1e6,
                    outcome.pnr.routing.peak_congestion,
                    outcome.report.vias,
                    outcome.report.cells,
                    t.elapsed()
                );
                for line in outcome.signoff.text_table().lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!(
                "{label}: ERROR after {} attempt(s): {e}",
                r.recovery.attempts
            ),
        }
    }
    println!(
        "recovery: {clean} clean, {recovered} recovered, {failed} failed, {extra} extra attempts"
    );
}

#[allow(dead_code)]
fn hotspots() {
    use ffet_core::{designs, run_flow, FlowConfig};
    use ffet_tech::{RoutingPattern, TechKind};
    // Configurable via env for congestion debugging.
    let fm: u8 = std::env::var("FFET_FM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
        .clamp(1, 12);
    let bm: u8 = std::env::var("FFET_BM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
        .min(12);
    let bp: f64 = std::env::var("FFET_BP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let util: f64 = std::env::var("FFET_UTIL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.76);
    let config = FlowConfig {
        utilization: util,
        pattern: RoutingPattern::new(fm, bm).expect("legal"),
        back_pin_ratio: bp,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::rv32_core(&library);
    let o = run_flow(&netlist, &library, &config).expect("flow");
    let grid_info = &o.pnr.routing;
    println!(
        "die {:?} overflow {:.0} wl {:.2}mm",
        o.pnr.floorplan.die, grid_info.overflow_tracks, o.report.wirelength_mm
    );
    for (x, y, side, h, v) in &grid_info.hot_gcells {
        println!("gcell ({x},{y}) {side:?}: H {h:.1} V {v:.1}");
    }
}

fn critpath() {
    use ffet_core::{designs, run_flow, FlowConfig};
    use ffet_tech::TechKind;
    let config = FlowConfig {
        utilization: 0.76,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::rv32_core(&library);
    let o = run_flow(&netlist, &library, &config).expect("flow");
    println!(
        "achieved {:.3} GHz, critical path {:.1} ps over {} stages",
        o.report.achieved_freq_ghz,
        o.timing.critical_path_ps,
        o.timing.path.len()
    );
    let total_cell: f64 = o.timing.path.iter().map(|s| s.cell_delay_ps).sum();
    let total_wire: f64 = o.timing.path.iter().map(|s| s.wire_delay_ps).sum();
    println!("cell delay {total_cell:.1} ps, wire delay {total_wire:.1} ps");
    for s in o.timing.path.iter().rev().take(25) {
        println!(
            "  {:>9.1} ps  cell {:>7.1}  wire {:>7.1}  fo {:>3}  {:8} {}",
            s.arrival_ps, s.cell_delay_ps, s.wire_delay_ps, s.fanout, s.cell, s.net
        );
    }
}
