//! `ffet`: the cross-run observability CLI — regression sentinel over the
//! performance ledger, plus trace export/diff tooling (DESIGN §13).
//!
//! ```text
//! ffet perf compare [--ledger PATH] [--baseline N] [--band PCT] [--timings-report-only]
//! ffet perf report  [--ledger PATH] [--out PATH]
//! ffet trace export <point> [--trace PATH] [--out PATH]
//! ffet trace diff   <point> [--against POINT] [--trace PATH] [--against-trace PATH]
//! ffet cache stats  [--root PATH]
//! ffet cache verify [--root PATH]
//! ffet cache gc     [--root PATH]
//! ```
//!
//! `perf compare` matches the latest ledger entry of every
//! `(kind, key, design)` group against its `--baseline`-th prior
//! same-config entry and exits 0 (clean), 1 (counter/gauge/digest drift —
//! always fatal — or a timing outside the ±`--band`% noise band unless
//! `--timings-report-only`), or 2 (nothing to compare). `perf report`
//! renders the deterministic markdown trajectory into
//! `results/PERF_REPORT.md`. `trace export` renders one point of
//! `results/trace.jsonl` as Chrome trace-event JSON for
//! `chrome://tracing`/Perfetto; `trace diff` structurally compares two
//! points (span tree + metrics, wall-clock timings excluded) and exits
//! non-zero when they differ.
//!
//! `cache stats` sizes the content-addressed stage cache (DESIGN §14):
//! blob/link counts, total and per-stage bytes, unattributed blobs and
//! crashed-writer temp files. `cache verify` re-hashes every blob and
//! resolves every key link, exiting non-zero when anything is poisoned or
//! dangling. `cache gc` removes everything unreachable or invalid
//! (poisoned blobs, unreferenced blobs, dangling links, orphan temps) and
//! rewrites the size manifest to cover only survivors.

// The ffet binary is a user-facing CLI: stdout/stderr are its output
// channel, like the repro binary.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ffet_obs::{diff, export, ledger::Ledger, perf};
use std::path::Path;

const DEFAULT_LEDGER: &str = "results/ledger/ledger.jsonl";
const DEFAULT_TRACE: &str = "results/trace.jsonl";
const DEFAULT_REPORT: &str = "results/PERF_REPORT.md";
const DEFAULT_CACHE_ROOT: &str = "results/ckpt/objects";

fn usage() -> ! {
    eprintln!(
        "usage: ffet perf compare [--ledger PATH] [--baseline N] [--band PCT] [--timings-report-only]\n\
         \x20      ffet perf report  [--ledger PATH] [--out PATH]\n\
         \x20      ffet trace export <point> [--trace PATH] [--out PATH]\n\
         \x20      ffet trace diff   <point> [--against POINT] [--trace PATH] [--against-trace PATH]\n\
         \x20      ffet cache <stats|verify|gc> [--root PATH]"
    );
    std::process::exit(2);
}

/// Simple flag/positional splitter: `flags` maps `--name` to its value,
/// everything else lands in `positional` in order.
fn parse_args(args: &[String], flag_names: &[&str], bare_flags: &[&str]) -> ParsedArgs {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if bare_flags.contains(&arg.as_str()) {
            parsed.bare.push(arg.clone());
        } else if flag_names.contains(&arg.as_str()) {
            match it.next() {
                Some(value) => parsed.flags.push((arg.clone(), value.clone())),
                None => usage(),
            }
        } else if arg.starts_with('-') {
            usage();
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    parsed
}

#[derive(Default)]
struct ParsedArgs {
    flags: Vec<(String, String)>,
    bare: Vec<String>,
    positional: Vec<String>,
}

impl ParsedArgs {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn has(&self, name: &str) -> bool {
        self.bare.iter().any(|b| b == name)
    }
}

fn load_ledger(path: &str) -> Result<Ledger, i32> {
    match Ledger::load(Path::new(path)) {
        Ok(ledger) => {
            if ledger.torn + ledger.corrupt > 0 {
                eprintln!(
                    "ledger: skipped {} torn + {} corrupt line(s) in {path}",
                    ledger.torn, ledger.corrupt
                );
            }
            Ok(ledger)
        }
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            Err(2)
        }
    }
}

fn perf_compare(args: &ParsedArgs) -> i32 {
    let ledger_path = args.flag("--ledger").unwrap_or(DEFAULT_LEDGER);
    let ledger = match load_ledger(ledger_path) {
        Ok(l) => l,
        Err(code) => return code,
    };
    if ledger.entries.is_empty() {
        eprintln!("error: {ledger_path} has no entries (run `repro` or a bench first)");
        return 2;
    }
    let n_back = match args.flag("--baseline") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --baseline takes an N-back count >= 1, got {v:?}");
                return 2;
            }
        },
    };
    let policy = match args.flag("--band") {
        None => perf::NoisePolicy::default(),
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => perf::NoisePolicy {
                timing_band_pct: pct,
            },
            _ => {
                eprintln!("error: --band takes a non-negative percentage, got {v:?}");
                return 2;
            }
        },
    };
    let report_only = args.has("--timings-report-only");
    let outcome = perf::compare_ledger(&ledger, n_back, &policy);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    for soft in &outcome.soft {
        println!("{}: {soft}", if report_only { "timing" } else { "FAIL" });
    }
    for hard in &outcome.hard {
        println!("FAIL: {hard}");
    }
    let code = perf::exit_code(&outcome, report_only);
    println!(
        "perf compare: {} group(s) checked, {} hard, {} timing flag(s) -> exit {code}",
        outcome.checked,
        outcome.hard.len(),
        outcome.soft.len(),
    );
    code
}

fn perf_report(args: &ParsedArgs) -> i32 {
    let ledger_path = args.flag("--ledger").unwrap_or(DEFAULT_LEDGER);
    let out_path = args.flag("--out").unwrap_or(DEFAULT_REPORT);
    let ledger = match load_ledger(ledger_path) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let report = perf::render_report(&ledger);
    print!("{report}");
    if let Err(e) = ffet_core::ckpt::atomic_write(Path::new(out_path), report.as_bytes()) {
        eprintln!("error: could not write {out_path}: {e}");
        return 2;
    }
    eprintln!("wrote {out_path}");
    0
}

/// Resolves `query` against the trace's point labels: an exact label or
/// any unique substring of one.
fn resolve_point(text: &str, query: &str) -> Result<String, String> {
    let labels = ffet_obs::point_labels(text);
    if labels.iter().any(|l| l == query) {
        return Ok(query.to_owned());
    }
    let matches: Vec<&String> = labels.iter().filter(|l| l.contains(query)).collect();
    match matches.as_slice() {
        [one] => Ok((*one).clone()),
        [] => Err(format!(
            "no point matching {query:?}; available: {}",
            labels.join(", ")
        )),
        many => Err(format!(
            "{query:?} is ambiguous; it matches: {}",
            many.iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn read_trace(path: &str) -> Result<String, i32> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e} (run a flow experiment first)");
            Err(2)
        }
    }
}

fn trace_export(args: &ParsedArgs) -> i32 {
    let Some(query) = args.positional.first() else {
        usage();
    };
    let trace_path = args.flag("--trace").unwrap_or(DEFAULT_TRACE);
    let text = match read_trace(trace_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let label = match resolve_point(&text, query) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let point = match ffet_obs::parse_point(&text, &label) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let doc = export::chrome_trace(&label, &point);
    // Self-check: never emit a document the viewer (or our validator)
    // would reject.
    if let Err(e) = export::validate_chrome_trace(&doc) {
        eprintln!("error: internal: export failed validation: {e}");
        return 2;
    }
    match args.flag("--out") {
        None => print!("{doc}"),
        Some(out) => {
            if let Err(e) = ffet_core::ckpt::atomic_write(Path::new(out), doc.as_bytes()) {
                eprintln!("error: could not write {out}: {e}");
                return 2;
            }
            eprintln!("wrote {out} (load it in chrome://tracing or ui.perfetto.dev)");
        }
    }
    0
}

fn trace_diff(args: &ParsedArgs) -> i32 {
    let Some(query) = args.positional.first() else {
        usage();
    };
    let trace_path = args.flag("--trace").unwrap_or(DEFAULT_TRACE);
    let against_path = args.flag("--against-trace").unwrap_or(trace_path);
    let text = match read_trace(trace_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let against_text = if against_path == trace_path {
        text.clone()
    } else {
        match read_trace(against_path) {
            Ok(t) => t,
            Err(code) => return code,
        }
    };
    let resolve = |text: &str, q: &str| match resolve_point(text, q) {
        Ok(l) => Ok(l),
        Err(e) => {
            eprintln!("error: {e}");
            Err(1)
        }
    };
    let label = match resolve(&text, query) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let against_label = match args.flag("--against") {
        Some(q) => match resolve(&against_text, q) {
            Ok(l) => l,
            Err(code) => return code,
        },
        None => match resolve(&against_text, &label) {
            Ok(l) => l,
            Err(code) => return code,
        },
    };
    let parse = |text: &str, label: &str| match ffet_obs::parse_point(text, label) {
        Ok(p) => Ok(p),
        Err(e) => {
            eprintln!("error: {e}");
            Err(1)
        }
    };
    let a = match parse(&text, &label) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let b = match parse(&against_text, &against_label) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let diffs = diff::diff_points(&a, &b);
    for line in &diffs {
        println!("{line}");
    }
    if diffs.is_empty() {
        println!("trace diff: {label:?} vs {against_label:?}: structurally identical");
        0
    } else {
        println!(
            "trace diff: {label:?} vs {against_label:?}: {} structural difference(s)",
            diffs.len()
        );
        1
    }
}

/// `ffet cache stats|verify|gc`: size accounting, integrity check, and
/// orphan sweep over the content-addressed stage cache (DESIGN §14).
fn cache_cmd(verb: &str, args: &ParsedArgs) -> i32 {
    use ffet_core::stagecache;
    let root = Path::new(args.flag("--root").unwrap_or(DEFAULT_CACHE_ROOT));
    match verb {
        "stats" => match stagecache::stats(root) {
            Ok(s) => {
                println!(
                    "stage cache at {}: {} blob(s), {} byte(s), {} link(s)",
                    root.display(),
                    s.blobs,
                    s.blob_bytes,
                    s.links
                );
                for (stage, (count, bytes)) in &s.per_stage {
                    println!("  {stage:8} {count:6} blob(s)  {bytes:10} byte(s)");
                }
                if s.unattributed > 0 {
                    println!(
                        "  {} blob(s) unattributed (no manifest record)",
                        s.unattributed
                    );
                }
                if s.tmp_orphans > 0 {
                    println!(
                        "  {} orphan tmp file(s) (run `ffet cache gc`)",
                        s.tmp_orphans
                    );
                }
                0
            }
            Err(e) => {
                eprintln!("error: cannot scan {}: {e}", root.display());
                2
            }
        },
        "verify" => match stagecache::verify(root) {
            Ok(v) => {
                println!(
                    "stage cache at {}: {} blob(s) verified, {} link(s) ok",
                    root.display(),
                    v.blobs_ok,
                    v.links_ok
                );
                for addr in &v.corrupt {
                    println!("  corrupt blob {addr}");
                }
                if v.dangling > 0 {
                    println!("  {} dangling link(s)", v.dangling);
                }
                i32::from(!v.corrupt.is_empty() || v.dangling > 0)
            }
            Err(e) => {
                eprintln!("error: cannot scan {}: {e}", root.display());
                2
            }
        },
        "gc" => match stagecache::gc(root) {
            Ok(g) => {
                println!(
                    "stage cache at {}: removed {} blob(s) ({} byte(s)), {} link(s), {} tmp file(s); kept {} blob(s)",
                    root.display(),
                    g.removed_blobs,
                    g.freed_bytes,
                    g.removed_links,
                    g.removed_tmp,
                    g.kept_blobs
                );
                0
            }
            Err(e) => {
                eprintln!("error: cannot sweep {}: {e}", root.display());
                2
            }
        },
        _ => usage(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match (
        argv.first().map(String::as_str),
        argv.get(1).map(String::as_str),
    ) {
        (Some("perf"), Some("compare")) => perf_compare(&parse_args(
            &argv[2..],
            &["--ledger", "--baseline", "--band"],
            &["--timings-report-only"],
        )),
        (Some("perf"), Some("report")) => {
            perf_report(&parse_args(&argv[2..], &["--ledger", "--out"], &[]))
        }
        (Some("trace"), Some("export")) => {
            trace_export(&parse_args(&argv[2..], &["--trace", "--out"], &[]))
        }
        (Some("trace"), Some("diff")) => trace_diff(&parse_args(
            &argv[2..],
            &["--trace", "--against", "--against-trace"],
            &[],
        )),
        (Some("cache"), Some(verb @ ("stats" | "verify" | "gc"))) => {
            cache_cmd(verb, &parse_args(&argv[2..], &["--root"], &[]))
        }
        _ => usage(),
    };
    std::process::exit(code);
}
