//! Benchmark harness for the FFET evaluation framework.
//!
//! The `repro` binary regenerates every table and figure of the paper;
//! the benches under `benches/` measure the flow stages and the headline
//! experiments on a small self-contained timing harness ([`BenchGroup`]),
//! so `cargo bench` needs no external crates or registry access. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A named group of timed kernels. Each kernel is warmed up once, then run
/// `sample_size` times; min / median / max wall-clock times are printed in
/// a fixed-width table line per kernel, and every leg's median is retained
/// so [`BenchGroup::finish`] can hand them to the performance ledger.
///
/// ```
/// let mut g = ffet_bench::BenchGroup::new("example");
/// g.sample_size(5);
/// g.bench_function("sum", || (0..1000u64).sum::<u64>());
/// let legs = g.finish();
/// assert_eq!(legs[0].0, "example/sum");
/// ```
pub struct BenchGroup {
    name: String,
    samples: usize,
    legs: Vec<(String, f64)>,
}

impl BenchGroup {
    /// Creates a group; kernel lines are prefixed with `name/`.
    #[must_use]
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_owned(),
            samples: 10,
            legs: Vec::new(),
        }
    }

    /// Sets how many timed samples each kernel runs (after one warm-up).
    pub fn sample_size(&mut self, samples: usize) {
        assert!(samples > 0, "sample size must be positive");
        self.samples = samples;
    }

    /// Times `f`: one warm-up call, then `sample_size` measured calls.
    /// The return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the work.
    pub fn bench_function<T, F: FnMut() -> T>(&mut self, label: &str, f: F) {
        let _ = self.bench_function_timed(label, f);
    }

    /// [`Self::bench_function`], returning the median sample so callers can
    /// derive speedups or persist machine-readable results (for example
    /// `route_kernel`'s `BENCH_route.json`).
    // The timing table IS the bench harness's output, like the repro CLI's
    // tables; there is no flow collector installed under `cargo bench`.
    #[allow(clippy::print_stdout)]
    pub fn bench_function_timed<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) -> Duration {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let leg = format!("{}/{}", self.name, label);
        println!(
            "{leg:<48} min {:>12}  median {:>12}  max {:>12}  ({} samples)",
            format_duration(times[0]),
            format_duration(median),
            format_duration(*times.last().expect("samples > 0")),
            self.samples,
        );
        self.legs.push((leg, median.as_secs_f64() * 1e3));
        median
    }

    /// Ends the group (prints a separating blank line) and returns every
    /// leg's `(group/label, median_ms)` pair in bench order, ready for
    /// [`append_bench_ledger`].
    #[allow(clippy::print_stdout)] // bench-harness output, see bench_function
    pub fn finish(self) -> Vec<(String, f64)> {
        println!();
        self.legs
    }
}

/// The workspace-root `results/` directory, overridable with
/// `FFET_RESULTS_DIR` (tests point it at a scratch directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("FFET_RESULTS_DIR").map_or_else(
        || {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        },
        PathBuf::from,
    )
}

/// Appends one `kind:"bench"` record to the cross-run performance ledger
/// (`results/ledger/ledger.jsonl`, DESIGN §13) for a finished bench
/// harness: the leg medians land under the nondeterministic `timing` key.
/// Errors degrade observability, never the bench — they go to stderr.
#[allow(clippy::print_stderr)] // bench-harness diagnostics, like BenchGroup
pub fn append_bench_ledger(key: &str, legs: Vec<(String, f64)>, wall: Duration) {
    // Benches carry no flow metric snapshot; the digest is the hash of the
    // empty snapshot so bench entries compare clean against each other.
    let empty = ffet_obs::MetricsSnapshot::default();
    let digest = ffet_obs::hash_hex(ffet_obs::fnv1a64(empty.to_json().render().as_bytes()));
    let cfg = ffet_obs::hash_hex(ffet_obs::fnv1a64(format!("bench-v1|{key}").as_bytes()));
    let mut entry = ffet_obs::LedgerEntry::from_metrics("bench", key, "", &cfg, &digest, &empty);
    entry.timing.jobs = 1;
    entry.timing.route_jobs = 1;
    entry.timing.host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as i64);
    entry.timing.wall_ms = wall.as_secs_f64() * 1e3;
    entry.timing.bench = legs;
    let path = results_dir().join("ledger").join("ledger.jsonl");
    if let Err(e) = ffet_obs::Ledger::append(&path, &entry) {
        eprintln!("{key}: could not append to {}: {e}", path.display());
    }
}

/// Human-readable duration with an adaptive unit (ns / µs / ms / s).
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_duration_picks_unit() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn bench_group_runs_kernel_expected_times() {
        let mut calls = 0u32;
        let mut g = BenchGroup::new("test");
        g.sample_size(3);
        g.bench_function("count_calls", || calls += 1);
        g.finish();
        // One warm-up + three samples.
        assert_eq!(calls, 4);
    }
}
