//! Benchmark harness for the FFET evaluation framework.
//!
//! The `repro` binary regenerates every table and figure of the paper;
//! the Criterion benches under `benches/` measure the flow stages and the
//! headline experiments. See `EXPERIMENTS.md` at the repository root for
//! the paper-vs-measured record.
