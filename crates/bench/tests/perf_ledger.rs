//! End-to-end acceptance tests for the cross-run performance ledger and
//! the `ffet` CLI (DESIGN §13).
//!
//! Each test spawns the real `repro` binary in a scratch directory so the
//! ledger under test is the one a user accumulates: consecutive sweep runs
//! at different pool widths must append entries whose timing-stripped
//! payloads are byte-identical, `ffet perf compare` must exit 0 between
//! them, and an injected fault plan (which perturbs the `recover.attempts`
//! counter and therefore the metric digest) must make it exit non-zero.
//! `ffet trace export` output must validate as Chrome trace-event JSON and
//! `ffet trace diff` must report identical points as identical.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");
const FFET: &str = env!("CARGO_BIN_EXE_ffet");

/// CWD-relative ledger path `repro` appends to (`ffet_obs::ledger::LEDGER_PATH`).
const LEDGER_REL: &str = "results/ledger/ledger.jsonl";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffet-perf-ledger-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A `repro` invocation on the fast counter design, isolated in `dir`.
fn repro(dir: &Path, args: &[&str], faults: Option<&str>) -> Command {
    let mut cmd = Command::new(REPRO);
    cmd.current_dir(dir)
        .args(args)
        .env("FFET_DESIGN", "counter")
        .env_remove("FFET_FAULTS")
        .env_remove("FFET_MAX_ATTEMPTS")
        .env_remove("FFET_DEADLINE")
        .env_remove("FFET_JOBS")
        .env_remove("FFET_ROUTE_JOBS")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(f) = faults {
        cmd.env("FFET_FAULTS", f);
    }
    cmd
}

fn run_ok(mut cmd: Command, what: &str) {
    let status = cmd
        .status()
        .unwrap_or_else(|e| panic!("{what}: spawn failed: {e}"));
    assert!(status.success(), "{what}: exited with {status}");
}

/// Runs `ffet` with `dir` as CWD, capturing output; panics on spawn failure.
fn ffet(dir: &Path, args: &[&str]) -> Output {
    Command::new(FFET)
        .current_dir(dir)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("ffet {args:?}: spawn failed: {e}"))
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("ffet terminated by signal")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The full sentinel loop: two sweeps at different widths append
/// byte-identical (modulo timing) ledger entries and compare clean; a
/// third sweep under a fault plan drifts the counters and fails the
/// compare. `perf report` renders the trajectory of all three.
#[test]
fn ledger_width_invariance_and_fault_drift() {
    let dir = scratch("widths");
    run_ok(repro(&dir, &["--jobs", "1", "all"], None), "jobs=1 sweep");
    run_ok(repro(&dir, &["--jobs", "4", "all"], None), "jobs=4 sweep");

    let ledger = ffet_obs::Ledger::load(&dir.join(LEDGER_REL)).expect("load ledger");
    assert_eq!(ledger.torn + ledger.corrupt, 0, "ledger has invalid lines");
    assert_eq!(ledger.entries.len(), 2, "one entry per sweep invocation");
    let (a, b) = (&ledger.entries[0], &ledger.entries[1]);
    assert_eq!(a.timing.jobs, 1);
    assert_eq!(b.timing.jobs, 4);
    assert_eq!(
        a.cfg, b.cfg,
        "same env must hash to the same config signature"
    );
    // The determinism contract, at the ledger level: everything outside
    // `timing` is byte-identical across pool widths.
    assert_eq!(
        a.deterministic_body(),
        b.deterministic_body(),
        "timing-stripped ledger payloads diverged between FFET_JOBS=1 and 4"
    );
    assert!(!a.digest.is_empty());
    assert!(!a.counters.is_empty(), "sweep entries carry flow counters");

    // Width-only variation compares clean (counters strict, timings
    // report-only — wall clock legitimately differs between the runs).
    let clean = ffet(&dir, &["perf", "compare", "--timings-report-only"]);
    assert_eq!(
        exit_code(&clean),
        0,
        "clean compare failed:\n{}",
        stdout_of(&clean)
    );
    assert!(stdout_of(&clean).contains("0 hard"));

    // A fault plan changes the config signature AND the deterministic
    // counters (`recover.attempts` climbs on the retry), so the sentinel
    // must flag hard drift even in timings-report-only mode.
    run_ok(
        repro(&dir, &["--jobs", "1", "all"], Some("route-open@1")),
        "faulted sweep",
    );
    let drift = ffet(&dir, &["perf", "compare", "--timings-report-only"]);
    assert_eq!(
        exit_code(&drift),
        1,
        "fault-perturbed counters must hard-fail the compare:\n{}",
        stdout_of(&drift)
    );
    assert!(stdout_of(&drift).contains("FAIL:"));

    // The report renders deterministically and lands on disk.
    let report = ffet(&dir, &["perf", "report"]);
    assert_eq!(exit_code(&report), 0);
    let rendered =
        std::fs::read_to_string(dir.join("results/PERF_REPORT.md")).expect("perf report written");
    assert_eq!(rendered, stdout_of(&report));
    assert!(rendered.contains("## Trajectory"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// `ffet trace export` emits valid Chrome trace-event JSON, and
/// `ffet trace diff` finds two independent runs of the same experiment
/// structurally identical (and exits non-zero for a missing point).
#[test]
fn trace_export_validates_and_diff_is_clean_across_runs() {
    let dir = scratch("trace-a");
    let other = scratch("trace-b");
    run_ok(repro(&dir, &["--jobs", "2", "fig11"], None), "fig11 run A");
    run_ok(
        repro(&other, &["--jobs", "2", "fig11"], None),
        "fig11 run B",
    );

    let trace_text =
        std::fs::read_to_string(dir.join("results/trace.jsonl")).expect("read trace.jsonl");
    let labels = ffet_obs::point_labels(&trace_text);
    let label = labels.first().expect("fig11 produced at least one point");

    // Export resolves the label, self-validates, and the bytes it prints
    // satisfy the Chrome trace-event schema independently.
    let export = ffet(&dir, &["trace", "export", label]);
    assert_eq!(
        exit_code(&export),
        0,
        "{}",
        String::from_utf8_lossy(&export.stderr)
    );
    let doc = stdout_of(&export);
    let stats = ffet_obs::validate_chrome_trace(&doc).expect("exported document validates");
    assert!(stats.complete_events > 0, "export carries span events");

    // `--out` writes the same document via the atomic-write path.
    let out_path = dir.join("point.trace.json");
    let export_file = ffet(
        &dir,
        &[
            "trace",
            "export",
            label,
            "--out",
            out_path.to_str().unwrap(),
        ],
    );
    assert_eq!(exit_code(&export_file), 0);
    assert_eq!(
        std::fs::read_to_string(&out_path).expect("read export"),
        doc
    );

    // Same point, two independent processes: structurally identical.
    let diff = ffet(
        &dir,
        &[
            "trace",
            "diff",
            label,
            "--against-trace",
            other.join("results/trace.jsonl").to_str().unwrap(),
        ],
    );
    assert_eq!(exit_code(&diff), 0, "{}", stdout_of(&diff));
    assert!(stdout_of(&diff).contains("structurally identical"));

    // An unresolvable point is a usage error, not a clean diff.
    let missing = ffet(&dir, &["trace", "diff", "no-such-point-label"]);
    assert_eq!(exit_code(&missing), 1);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&other);
}

/// With nothing to compare, the sentinel distinguishes "no data" (exit 2)
/// from "drift" (exit 1) so CI can treat an empty ledger as a setup bug.
#[test]
fn compare_without_data_exits_two() {
    let dir = scratch("empty");
    let missing = ffet(&dir, &["perf", "compare"]);
    assert_eq!(exit_code(&missing), 2, "{}", stdout_of(&missing));

    // A single entry has no baseline: every group is noted, none checked.
    run_ok(repro(&dir, &["--jobs", "1", "fig11"], None), "lone fig11");
    let lone = ffet(&dir, &["perf", "compare"]);
    assert_eq!(exit_code(&lone), 2, "{}", stdout_of(&lone));
    assert!(stdout_of(&lone).contains("no baseline"));

    let _ = std::fs::remove_dir_all(&dir);
}
