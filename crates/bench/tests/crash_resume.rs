//! Kill-and-resume differential tests for the crash-safe sweep driver.
//!
//! Each test spawns the real `repro` binary in a scratch directory, kills
//! it mid-sweep (SIGKILL — no cleanup handlers run) or corrupts its
//! journal via the `ckpt-torn-write`/`ckpt-stale` faults, resumes with
//! `--resume`, and asserts the final artifacts are byte-identical to an
//! uninterrupted run: every experiment CSV, `trace.jsonl`, and
//! `metrics.json` modulo the `timing` key. `runlog.csv` carries wall-clock
//! telemetry and is outside the contract (DESIGN §7, §12).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

/// Experiment count of `repro all` — the journal's final record count.
const ALL_EXPERIMENTS: usize = 11;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffet-crash-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A `repro` invocation on the fast counter design, isolated in `dir`.
fn repro(dir: &Path, args: &[&str], faults: Option<&str>) -> Command {
    let mut cmd = Command::new(REPRO);
    cmd.current_dir(dir)
        .args(args)
        .env("FFET_DESIGN", "counter")
        .env_remove("FFET_FAULTS")
        .env_remove("FFET_MAX_ATTEMPTS")
        .env_remove("FFET_DEADLINE")
        .env_remove("FFET_JOBS")
        .env_remove("FFET_ROUTE_JOBS")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(f) = faults {
        cmd.env("FFET_FAULTS", f);
    }
    cmd
}

fn run_ok(mut cmd: Command, what: &str) {
    let status = cmd
        .status()
        .unwrap_or_else(|e| panic!("{what}: spawn failed: {e}"));
    assert!(status.success(), "{what}: exited with {status}");
}

/// Counts complete (newline-terminated) journal records.
fn journal_lines(dir: &Path) -> usize {
    std::fs::read(dir.join("results/ckpt/journal.jsonl"))
        .map_or(0, |bytes| bytes.iter().filter(|&&b| b == b'\n').count())
}

/// Every artifact under the byte-identity contract: the experiment CSVs.
/// `runlog.csv` (wall clock) is excluded; `metrics.json` and
/// `trace.jsonl` are checked separately (timing data is outside §7).
fn contract_artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let results = dir.join("results");
    for entry in std::fs::read_dir(&results).expect("read results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") && name != "runlog.csv" {
            out.insert(name, std::fs::read(entry.path()).expect("read artifact"));
        }
    }
    out
}

fn assert_bytes_identical(reference: &Path, resumed: &Path, what: &str) {
    let want = contract_artifacts(reference);
    let got = contract_artifacts(resumed);
    assert_eq!(
        want.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "{what}: artifact sets differ"
    );
    for (name, bytes) in &want {
        assert_eq!(
            bytes, &got[name],
            "{what}: results/{name} diverged from the uninterrupted run"
        );
    }
    // Metric values are deterministic; only the top-level `timing` key may
    // differ between runs.
    let strip = |dir: &Path| {
        let text =
            std::fs::read_to_string(dir.join("results/metrics.json")).expect("read metrics.json");
        ffet_obs::strip_timing(&text).expect("valid metrics.json")
    };
    assert_eq!(strip(reference), strip(resumed), "{what}: metrics diverged");
    // Span lines carry wall-clock timings, so a recomputed experiment's
    // trace bytes legitimately differ from a separate reference run's.
    // The structural comparator (`ffet_obs::trace::diff`) checks exactly
    // the deterministic part: point order, span trees, metric snapshots.
    let trace = |dir: &Path| {
        let text =
            std::fs::read_to_string(dir.join("results/trace.jsonl")).expect("read trace.jsonl");
        ffet_obs::validate_trace(&text).expect("trace schema is valid");
        text
    };
    let diffs = ffet_obs::trace::diff::diff_traces(&trace(reference), &trace(resumed))
        .expect("traces parse");
    assert!(
        diffs.is_empty(),
        "{what}: traces structurally diverged:\n{}",
        diffs.join("\n")
    );
}

/// Runs `repro --jobs <kill_jobs> all`, SIGKILLs it once `min_records`
/// experiments are journaled, then resumes with `--jobs <resume_jobs>`.
fn kill_and_resume(tag: &str, kill_jobs: &str, resume_jobs: &str) {
    let reference = scratch(&format!("{tag}-ref"));
    run_ok(
        repro(&reference, &["--jobs", "4", "all"], None),
        "uninterrupted reference run",
    );
    assert_eq!(journal_lines(&reference), ALL_EXPERIMENTS);

    let victim = scratch(&format!("{tag}-victim"));
    let mut child = repro(&victim, &["--jobs", kill_jobs, "all"], None)
        .spawn()
        .expect("spawn victim run");
    // Kill after a few experiments are journaled but (on any plausible
    // machine) well before the sweep finishes. If the sweep somehow
    // finishes first, the resume below degenerates to a full replay —
    // still a valid (if weaker) check of the same contract.
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if journal_lines(&victim) >= 4 || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "victim made no journal progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    let killed_mid_sweep = child.try_wait().expect("try_wait").is_none();
    child.kill().expect("SIGKILL victim");
    let _ = child.wait();
    assert!(
        killed_mid_sweep,
        "sweep finished before the kill; lower the record threshold"
    );
    let journaled_at_kill = journal_lines(&victim);
    assert!(journaled_at_kill >= 4, "kill raced journaling");

    run_ok(
        repro(&victim, &["--jobs", resume_jobs, "--resume", "all"], None),
        "resumed run",
    );
    // The resume replayed the journaled prefix and recomputed (and
    // journaled) the rest.
    assert_eq!(journal_lines(&victim), ALL_EXPERIMENTS);
    assert_bytes_identical(&reference, &victim, tag);

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&victim);
}

#[test]
fn kill_and_resume_is_byte_identical_across_widths() {
    // Kill a wide run, resume narrow: also proves journal records written
    // under FFET_JOBS=4 replay under FFET_JOBS=1.
    kill_and_resume("wide-narrow", "4", "1");
}

/// The mirror-image width pairing; CI runs it via `--include-ignored`.
#[test]
#[ignore = "slow second kill-resume cycle; CI runs it with --include-ignored"]
fn kill_and_resume_narrow_to_wide() {
    kill_and_resume("narrow-wide", "1", "4");
}

/// `ckpt-torn-write` truncates every journal append mid-line — the on-disk
/// shape of a SIGKILL landing inside the `write(2)` itself. Recovery must
/// discard the torn garbage and recompute, landing identical artifacts.
#[test]
fn torn_journal_appends_recover_to_identical_artifacts() {
    let reference = scratch("torn-ref");
    run_ok(
        repro(&reference, &["--jobs", "2", "fig11"], None),
        "reference fig11",
    );

    let victim = scratch("torn-victim");
    run_ok(
        repro(&victim, &["--jobs", "2", "fig11"], Some("ckpt-torn-write")),
        "fig11 with torn journal appends",
    );
    assert_eq!(
        journal_lines(&victim),
        0,
        "every record was torn mid-append"
    );
    // Same fault env on resume (the fault plan is part of the config
    // signature): the torn record validates nothing, so the experiment is
    // recomputed — and the ckpt faults are flow-neutral, so the artifacts
    // still match a fault-free run byte-for-byte.
    run_ok(
        repro(
            &victim,
            &["--jobs", "2", "--resume", "fig11"],
            Some("ckpt-torn-write"),
        ),
        "resume over torn journal",
    );
    assert_bytes_identical(&reference, &victim, "torn-write");

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&victim);
}

/// `ckpt-stale` corrupts the record checksum: the journal line is intact
/// but fails validation, so resume must treat it (and everything after
/// it) as garbage and recompute.
#[test]
fn stale_journal_records_are_discarded_on_resume() {
    let reference = scratch("stale-ref");
    run_ok(
        repro(&reference, &["--jobs", "2", "fig11"], None),
        "reference fig11",
    );

    let victim = scratch("stale-victim");
    run_ok(
        repro(&victim, &["--jobs", "2", "fig11"], Some("ckpt-stale")),
        "fig11 with stale journal records",
    );
    assert_eq!(
        journal_lines(&victim),
        1,
        "the stale record is complete on disk, just invalid"
    );
    run_ok(
        repro(
            &victim,
            &["--jobs", "2", "--resume", "fig11"],
            Some("ckpt-stale"),
        ),
        "resume over stale journal",
    );
    assert_bytes_identical(&reference, &victim, "ckpt-stale");

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&victim);
}
