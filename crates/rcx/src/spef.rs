//! SPEF-style export of extracted parasitics.
//!
//! The Standard Parasitic Exchange Format is how the paper's StarRC step
//! hands its RC nets to STA. This writer emits the reduced view this crate
//! extracts — per net: total capacitance plus one `*RES`/`*CAP` entry per
//! sink path — which is exactly what [`crate::extract_net`] computes.

use crate::NetParasitics;
use std::fmt::Write as _;

/// Writes a SPEF-style file for a set of extracted nets.
///
/// ```
/// use ffet_rcx::{write_spef, NetParasitics, SinkParasitics};
///
/// let nets = vec![NetParasitics {
///     name: "n1".into(),
///     total_cap_ff: 1.25,
///     sinks: vec![SinkParasitics { path_res_kohm: 0.4, wire_elmore_ps: 0.3, connected: true }],
/// }];
/// let spef = write_spef("rv32_core", &nets);
/// assert!(spef.contains("*D_NET n1 1.2500"));
/// ```
#[must_use]
pub fn write_spef(design: &str, nets: &[NetParasitics]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "*SPEF \"IEEE 1481-1998\"");
    let _ = writeln!(s, "*DESIGN \"{design}\"");
    let _ = writeln!(s, "*PROGRAM \"ffet-rcx\"");
    let _ = writeln!(s, "*T_UNIT 1 PS");
    let _ = writeln!(s, "*C_UNIT 1 FF");
    let _ = writeln!(s, "*R_UNIT 1 KOHM");
    let _ = writeln!(s);
    for net in nets {
        let _ = writeln!(s, "*D_NET {} {:.4}", net.name, net.total_cap_ff);
        if !net.sinks.is_empty() {
            let _ = writeln!(s, "*RES");
            for (k, sink) in net.sinks.iter().enumerate() {
                let flag = if sink.connected { "" } else { " // ESTIMATED" };
                let _ = writeln!(
                    s,
                    "{} {}:drv {}:snk{} {:.4}{}",
                    k + 1,
                    net.name,
                    net.name,
                    k,
                    sink.path_res_kohm,
                    flag
                );
            }
        }
        let _ = writeln!(s, "*END");
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SinkParasitics;

    fn sample() -> Vec<NetParasitics> {
        vec![
            NetParasitics {
                name: "alpha".into(),
                total_cap_ff: 2.5,
                sinks: vec![
                    SinkParasitics {
                        path_res_kohm: 0.7,
                        wire_elmore_ps: 1.1,
                        connected: true,
                    },
                    SinkParasitics {
                        path_res_kohm: 1.9,
                        wire_elmore_ps: 4.0,
                        connected: false,
                    },
                ],
            },
            NetParasitics {
                name: "beta".into(),
                total_cap_ff: 0.0,
                sinks: vec![],
            },
        ]
    }

    #[test]
    fn header_and_units_present() {
        let spef = write_spef("core", &sample());
        assert!(spef.contains("*DESIGN \"core\""));
        assert!(spef.contains("*C_UNIT 1 FF"));
        assert!(spef.contains("*R_UNIT 1 KOHM"));
    }

    #[test]
    fn nets_and_sinks_serialized() {
        let spef = write_spef("core", &sample());
        assert!(spef.contains("*D_NET alpha 2.5000"));
        assert!(spef.contains("1 alpha:drv alpha:snk0 0.7000"));
        assert!(spef.contains("2 alpha:drv alpha:snk1 1.9000 // ESTIMATED"));
        // Empty nets still emit a block.
        assert!(spef.contains("*D_NET beta 0.0000"));
        assert_eq!(spef.matches("*END").count(), 2);
    }
}
