//! Dual-sided RC extraction from (merged) DEF routing.
//!
//! Plays the role of the paper's StarRC step: after [`ffet_lefdef::merge_defs`]
//! combines the frontside and backside DEFs, [`extract_net`] turns each
//! net's wire/via geometry into an RC tree and computes, per sink,
//!
//! * the total wire capacitance the driver sees,
//! * the source→sink path resistance, and
//! * the wire-only Elmore term `Σ R_edge × C_downstream(edge)`,
//!
//! which the STA combines with the NLDM driver model and pin caps.
//!
//! Per-layer R/C coefficients come from the Table II pitches via
//! [`ffet_tech::RcCoefficients`]; vias contribute the series resistance and
//! landing capacitance of [`ffet_tech::VIA_RESISTANCE_OHM`] /
//! [`ffet_tech::VIA_CAPACITANCE_FF`].

mod spef;

pub use spef::write_spef;

use ffet_geom::{FxHashMap, FxHashSet, Point};
use ffet_lefdef::DefNet;
use ffet_tech::{LayerId, Technology, VIA_CAPACITANCE_FF, VIA_RESISTANCE_OHM};

/// Extracted parasitics of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParasitics {
    /// Net name.
    pub name: String,
    /// Total wire + via capacitance, fF.
    pub total_cap_ff: f64,
    /// Per requested sink, in request order.
    pub sinks: Vec<SinkParasitics>,
}

/// Parasitics seen from the driver toward one sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkParasitics {
    /// Total resistance of the source→sink path, kΩ.
    pub path_res_kohm: f64,
    /// Wire-only Elmore delay term `Σ R_e · C_downstream(e)`, ps.
    pub wire_elmore_ps: f64,
    /// Whether the sink was reached through routed geometry (`false` means
    /// the Manhattan-estimate fallback was used).
    pub connected: bool,
}

struct Edge {
    a: usize,
    b: usize,
    res: f64,
    cap: f64,
}

/// Reusable hash-map scratch for [`extract_net_with`].
///
/// The node-interning and via-dedup maps are the only allocations whose
/// size tracks net geometry; holding one scratch across a batch of nets
/// lets every net after the first reuse the tables grown by its
/// predecessors. The maps use the deterministic [`FxHashMap`] hasher —
/// they are never iterated, so bucket order cannot leak into results
/// either way, but the fixed seed also removes per-process hashing cost
/// variation.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    node_ids: FxHashMap<Point, usize>,
    via_res_at: FxHashMap<Point, f64>,
    seen_vias: FxHashSet<(Point, LayerId, LayerId)>,
}

impl ExtractScratch {
    /// An empty scratch; cleared (not shrunk) by every extraction call.
    #[must_use]
    pub fn new() -> ExtractScratch {
        ExtractScratch::default()
    }
}

/// Extracts the RC tree of one routed net.
///
/// `source` and `sinks` are the physical pin positions (the router anchors
/// its stubs exactly there). A spanning tree is grown from the source over
/// the segment graph; loop edges (from overlapping connections) only
/// contribute capacitance. Unreachable sinks fall back to a Manhattan
/// estimate on an M1-class layer — STA stays total (it can still rank
/// candidate implementations) while the net is flagged via
/// [`SinkParasitics::connected`].
#[must_use]
pub fn extract_net(
    net: &DefNet,
    tech: &Technology,
    source: Point,
    sinks: &[Point],
) -> NetParasitics {
    extract_net_with(net, tech, source, sinks, &mut ExtractScratch::new())
}

/// [`extract_net`] with caller-owned scratch, so batch drivers can reuse
/// the hash tables across nets. Results are identical to [`extract_net`].
#[must_use]
pub fn extract_net_with(
    net: &DefNet,
    tech: &Technology,
    source: Point,
    sinks: &[Point],
    scratch: &mut ExtractScratch,
) -> NetParasitics {
    ffet_obs::counter_add("rcx.nets", 1);
    ffet_obs::counter_add("rcx.segments", net.wires.len() as i64);
    // ---- Build the node graph from segment endpoints ----
    let node_ids = &mut scratch.node_ids;
    node_ids.clear();
    let mut points: Vec<Point> = Vec::new();
    let intern = |node_ids: &mut FxHashMap<Point, usize>, points: &mut Vec<Point>, p: Point| {
        *node_ids.entry(p).or_insert_with(|| {
            points.push(p);
            points.len() - 1
        })
    };
    let mut edges: Vec<Edge> = Vec::new();
    let mut total_cap = 0.0;
    for w in &net.wires {
        let rc = tech
            .stack()
            .layer(w.layer)
            .map_or_else(|| ffet_tech::RcCoefficients::from_pitch(30), |l| l.rc);
        let len = w.length() as f64;
        let res = rc.r_ohm_per_nm * len / 1000.0; // Ω → kΩ
        let cap = rc.c_ff_per_nm * len;
        total_cap += cap;
        let a = intern(node_ids, &mut points, w.from);
        let b = intern(node_ids, &mut points, w.to);
        edges.push(Edge { a, b, res, cap });
    }
    // Vias: series resistance at their landing point, capacitance lumped.
    // The router emits one pin via stack per 2-pin connection, so shared
    // MST pins carry duplicate vias — dedupe them before accumulating.
    let via_res_at = &mut scratch.via_res_at;
    via_res_at.clear();
    let seen_vias = &mut scratch.seen_vias;
    seen_vias.clear();
    for v in &net.vias {
        if !seen_vias.insert((v.at, v.from_layer, v.to_layer)) {
            continue;
        }
        total_cap += VIA_CAPACITANCE_FF;
        *via_res_at.entry(v.at).or_insert(0.0) += VIA_RESISTANCE_OHM / 1000.0;
    }

    let n = points.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        adj[e.a].push(ei);
        adj[e.b].push(ei);
    }

    // ---- Spanning tree (BFS) from the source ----
    let source_node = node_ids.get(&source).copied();
    let mut parent_edge: Vec<Option<usize>> = vec![None; n];
    let mut parent: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    if let Some(root) = source_node {
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &ei in &adj[u] {
                let e = &edges[ei];
                let v = if e.a == u { e.b } else { e.a };
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    parent_edge[v] = Some(ei);
                    queue.push_back(v);
                }
            }
        }
    }

    // Downstream wire capacitance per node: parent edge cap plus children.
    let mut down_cap = vec![0.0f64; n];
    for &u in order.iter().rev() {
        if let Some(ei) = parent_edge[u] {
            down_cap[u] += edges[ei].cap;
            let p = parent[u];
            down_cap[p] += down_cap[u];
        }
    }

    // Per-node path R and Elmore accumulated from the root. The via stack
    // at a node is charged when its parent edge is traversed; the root's
    // own stack (the driver pin via) is charged on every first hop.
    let root_via = source_node
        .and_then(|r| via_res_at.get(&points[r]))
        .copied()
        .unwrap_or(0.0);
    let mut path_res = vec![0.0f64; n];
    let mut elmore = vec![0.0f64; n];
    for &u in &order {
        let Some(ei) = parent_edge[u] else { continue };
        let p = parent[u];
        let mut r = edges[ei].res;
        if let Some(vr) = via_res_at.get(&points[u]) {
            r += vr;
        }
        if Some(p) == source_node {
            r += root_via;
        }
        path_res[u] = path_res[p] + r;
        elmore[u] = elmore[p] + r * down_cap[u];
    }

    // ---- Answer per sink ----
    let fallback_rc = ffet_tech::RcCoefficients::from_pitch(34);
    let sink_params: Vec<SinkParasitics> = sinks
        .iter()
        .map(|&s| match node_ids.get(&s) {
            Some(&node) if visited[node] => SinkParasitics {
                path_res_kohm: path_res[node],
                wire_elmore_ps: elmore[node],
                connected: true,
            },
            _ => {
                let len = source.manhattan(s) as f64;
                let r = fallback_rc.r_ohm_per_nm * len / 1000.0;
                let c = fallback_rc.c_ff_per_nm * len;
                SinkParasitics {
                    path_res_kohm: r,
                    wire_elmore_ps: r * c / 2.0,
                    connected: false,
                }
            }
        })
        .collect();

    NetParasitics {
        name: net.name.clone(),
        total_cap_ff: total_cap,
        sinks: sink_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_lefdef::{DefVia, DefWire};
    use ffet_tech::{LayerId, Side};

    fn wire(layer: LayerId, x1: i64, y1: i64, x2: i64, y2: i64) -> DefWire {
        DefWire {
            layer,
            from: Point::new(x1, y1),
            to: Point::new(x2, y2),
        }
    }

    #[test]
    fn straight_wire_rc() {
        let tech = Technology::ffet_3p5t();
        let m2 = LayerId::new(Side::Front, 2);
        let net = DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![wire(m2, 0, 0, 10_000, 0)],
            vias: vec![],
        };
        let p = extract_net(&net, &tech, Point::new(0, 0), &[Point::new(10_000, 0)]);
        let rc = tech.stack().layer(m2).unwrap().rc;
        assert!((p.total_cap_ff - rc.c_ff_per_nm * 10_000.0).abs() < 1e-9);
        let s = p.sinks[0];
        assert!(s.connected);
        assert!((s.path_res_kohm - rc.r_ohm_per_nm * 10.0).abs() < 1e-9);
        assert!(s.wire_elmore_ps > 0.0);
    }

    #[test]
    fn farther_sink_has_larger_elmore() {
        let tech = Technology::ffet_3p5t();
        let m2 = LayerId::new(Side::Front, 2);
        let net = DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![wire(m2, 0, 0, 5_000, 0), wire(m2, 5_000, 0, 10_000, 0)],
            vias: vec![],
        };
        let p = extract_net(
            &net,
            &tech,
            Point::new(0, 0),
            &[Point::new(5_000, 0), Point::new(10_000, 0)],
        );
        assert!(p.sinks[1].wire_elmore_ps > p.sinks[0].wire_elmore_ps);
        assert!(p.sinks[1].path_res_kohm > p.sinks[0].path_res_kohm);
    }

    #[test]
    fn upper_layers_are_lower_resistance() {
        let tech = Technology::ffet_3p5t();
        let lo = LayerId::new(Side::Front, 2);
        let hi = LayerId::new(Side::Front, 12);
        let mk = |layer| DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![wire(layer, 0, 0, 50_000, 0)],
            vias: vec![],
        };
        let plo = extract_net(&mk(lo), &tech, Point::new(0, 0), &[Point::new(50_000, 0)]);
        let phi = extract_net(&mk(hi), &tech, Point::new(0, 0), &[Point::new(50_000, 0)]);
        assert!(phi.sinks[0].path_res_kohm < plo.sinks[0].path_res_kohm / 10.0);
    }

    #[test]
    fn vias_add_series_resistance_and_cap() {
        let tech = Technology::ffet_3p5t();
        let m2 = LayerId::new(Side::Front, 2);
        let m3 = LayerId::new(Side::Front, 3);
        let base = DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![wire(m2, 0, 0, 5_000, 0), wire(m3, 5_000, 0, 5_000, 5_000)],
            vias: vec![],
        };
        let mut with_via = base.clone();
        with_via.vias.push(DefVia {
            at: Point::new(5_000, 0),
            from_layer: m2,
            to_layer: m3,
        });
        let sink = [Point::new(5_000, 5_000)];
        let p0 = extract_net(&base, &tech, Point::new(0, 0), &sink);
        let p1 = extract_net(&with_via, &tech, Point::new(0, 0), &sink);
        assert!(p1.total_cap_ff > p0.total_cap_ff);
        assert!(p1.sinks[0].path_res_kohm > p0.sinks[0].path_res_kohm);
    }

    #[test]
    fn dual_sided_net_sums_both_sides() {
        // The merged-DEF scenario: one net with front and back geometry.
        let tech = Technology::ffet_3p5t();
        let fm2 = LayerId::new(Side::Front, 2);
        let bm2 = LayerId::new(Side::Back, 2);
        let net = DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![wire(fm2, 0, 0, 8_000, 0), wire(bm2, 0, 0, 0, 6_000)],
            vias: vec![],
        };
        let p = extract_net(
            &net,
            &tech,
            Point::new(0, 0),
            &[Point::new(8_000, 0), Point::new(0, 6_000)],
        );
        assert!(p.sinks.iter().all(|s| s.connected));
        let rc = tech.stack().layer(fm2).unwrap().rc;
        let expected = rc.c_ff_per_nm * 14_000.0;
        assert!((p.total_cap_ff - expected).abs() / expected < 0.01);
    }

    #[test]
    fn unrouted_sink_uses_fallback() {
        let tech = Technology::ffet_3p5t();
        let net = DefNet {
            name: "n".into(),
            connections: vec![],
            wires: vec![],
            vias: vec![],
        };
        let p = extract_net(&net, &tech, Point::new(0, 0), &[Point::new(3_000, 4_000)]);
        let s = p.sinks[0];
        assert!(!s.connected);
        assert!(s.path_res_kohm > 0.0);
        assert!(s.wire_elmore_ps > 0.0);
    }

    #[test]
    fn loop_edges_do_not_break_extraction() {
        // A square loop of wire: spanning tree ignores one edge, all caps
        // still counted.
        let tech = Technology::ffet_3p5t();
        let m2 = LayerId::new(Side::Front, 2);
        let m3 = LayerId::new(Side::Front, 3);
        let net = DefNet {
            name: "loop".into(),
            connections: vec![],
            wires: vec![
                wire(m2, 0, 0, 1_000, 0),
                wire(m3, 1_000, 0, 1_000, 1_000),
                wire(m2, 1_000, 1_000, 0, 1_000),
                wire(m3, 0, 1_000, 0, 0),
            ],
            vias: vec![],
        };
        let p = extract_net(&net, &tech, Point::new(0, 0), &[Point::new(1_000, 1_000)]);
        assert!(p.sinks[0].connected);
        assert!(p.total_cap_ff > 0.0);
    }
}
