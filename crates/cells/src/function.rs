/// Logic function of a standard cell.
///
/// The set mirrors the paper's Fig. 4 library (INV/BUF/NAND/NOR/AOI/OAI/
/// XOR/XNOR/MUX/DFF) plus the auxiliary cells the flow needs: tie cells,
/// clock buffers, the FFET Power Tap Cell and filler.
///
/// Input ordering conventions (used by [`CellFunction::eval`] and the
/// netlist builders) are documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellFunction {
    /// `Y = !A`.
    Inv,
    /// `Y = A`.
    Buf,
    /// `Y = !(A & B)`.
    Nand2,
    /// `Y = !(A & B & C)`.
    Nand3,
    /// `Y = !(A | B)`.
    Nor2,
    /// `Y = !(A | B | C)`.
    Nor3,
    /// `Y = A & B`.
    And2,
    /// `Y = A | B`.
    Or2,
    /// `Y = A ^ B`.
    Xor2,
    /// `Y = !(A ^ B)`.
    Xnor2,
    /// `Y = !((A1 & A2) | B)`; inputs `[A1, A2, B]`.
    Aoi21,
    /// `Y = !((A1 & A2) | (B1 & B2))`; inputs `[A1, A2, B1, B2]`.
    Aoi22,
    /// `Y = !((A1 | A2) & B)`; inputs `[A1, A2, B]`.
    Oai21,
    /// `Y = !((A1 | A2) & (B1 | B2))`; inputs `[A1, A2, B1, B2]`.
    Oai22,
    /// `Y = S ? B : A`; inputs `[A, B, S]`. Transmission-gate based —
    /// benefits from the FFET Split Gate.
    Mux2,
    /// `Y = S1 ? (S0 ? D3 : D2) : (S0 ? D1 : D0)`; inputs
    /// `[D0, D1, D2, D3, S0, S1]`.
    Mux4,
    /// Rising-edge D flip-flop; inputs `[D, CK]`, output `Q`. Built from
    /// transmission gates and C²MOS — the paper's flagship Split Gate cell.
    Dff,
    /// Constant logic 1.
    TieHi,
    /// Constant logic 0.
    TieLo,
    /// Clock buffer (`Y = A`), balanced rise/fall for CTS.
    ClkBuf,
    /// Bridging cell (`Y = A`): a buffer whose *input* pin sits on the
    /// wafer backside, used by conventional flows to transfer a signal
    /// between the sides. The FFET's inherent dual-sided output pins make
    /// it unnecessary (paper §III.A) — it exists here for the ablation.
    Bridge,
    /// FFET Power Tap Cell: connects the frontside VSS rail to the BSPDN.
    /// No signal pins; placed by the powerplan, fixed during placement.
    PowerTap,
    /// Filler cell occupying otherwise-empty sites.
    Filler,
}

impl CellFunction {
    /// All functions that appear in the Fig. 4 library comparison, in the
    /// paper's plot order.
    pub const FIG4_SET: [CellFunction; 14] = [
        CellFunction::Inv,
        CellFunction::Buf,
        CellFunction::Nand2,
        CellFunction::Nor2,
        CellFunction::Nand3,
        CellFunction::Nor3,
        CellFunction::And2,
        CellFunction::Or2,
        CellFunction::Xor2,
        CellFunction::Xnor2,
        CellFunction::Aoi22,
        CellFunction::Oai22,
        CellFunction::Mux2,
        CellFunction::Dff,
    ];

    /// Number of signal input pins.
    #[must_use]
    pub fn input_count(&self) -> usize {
        match self {
            CellFunction::Inv | CellFunction::Buf | CellFunction::ClkBuf | CellFunction::Bridge => {
                1
            }
            CellFunction::Nand2
            | CellFunction::Nor2
            | CellFunction::And2
            | CellFunction::Or2
            | CellFunction::Xor2
            | CellFunction::Xnor2
            | CellFunction::Dff => 2,
            CellFunction::Nand3
            | CellFunction::Nor3
            | CellFunction::Aoi21
            | CellFunction::Oai21
            | CellFunction::Mux2 => 3,
            CellFunction::Aoi22 | CellFunction::Oai22 => 4,
            CellFunction::Mux4 => 6,
            CellFunction::TieHi
            | CellFunction::TieLo
            | CellFunction::PowerTap
            | CellFunction::Filler => 0,
        }
    }

    /// Whether the cell has an output pin.
    #[must_use]
    pub fn has_output(&self) -> bool {
        !matches!(self, CellFunction::PowerTap | CellFunction::Filler)
    }

    /// Whether the cell is a sequential element (state-holding).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellFunction::Dff)
    }

    /// Whether the FFET implementation of this cell uses the Split Gate
    /// (transmission gates / C²MOS with complementary clocks), which is
    /// where the extra area savings of Fig. 4 come from.
    #[must_use]
    pub fn uses_split_gate(&self) -> bool {
        matches!(
            self,
            CellFunction::Mux2
                | CellFunction::Mux4
                | CellFunction::Dff
                | CellFunction::Xor2
                | CellFunction::Xnor2
        )
    }

    /// Whether the FFET implementation needs an extra Drain Merge via,
    /// costing area relative to CFET (the AOI22/OAI22 penalty the paper
    /// admits to).
    #[must_use]
    pub fn extra_drain_merge(&self) -> bool {
        matches!(self, CellFunction::Aoi22 | CellFunction::Oai22)
    }

    /// Input pin names in the conventional library order.
    #[must_use]
    pub fn input_names(&self) -> Vec<&'static str> {
        match self {
            CellFunction::Inv | CellFunction::Buf | CellFunction::ClkBuf | CellFunction::Bridge => {
                vec!["A"]
            }
            CellFunction::Nand2
            | CellFunction::Nor2
            | CellFunction::And2
            | CellFunction::Or2
            | CellFunction::Xor2
            | CellFunction::Xnor2 => vec!["A", "B"],
            CellFunction::Nand3 | CellFunction::Nor3 => vec!["A", "B", "C"],
            CellFunction::Aoi21 | CellFunction::Oai21 => vec!["A1", "A2", "B"],
            CellFunction::Aoi22 | CellFunction::Oai22 => vec!["A1", "A2", "B1", "B2"],
            CellFunction::Mux2 => vec!["A", "B", "S"],
            CellFunction::Mux4 => vec!["D0", "D1", "D2", "D3", "S0", "S1"],
            CellFunction::Dff => vec!["D", "CK"],
            CellFunction::TieHi
            | CellFunction::TieLo
            | CellFunction::PowerTap
            | CellFunction::Filler => vec![],
        }
    }

    /// Library name stem, e.g. `INV`, `AOI22`, `DFF`.
    #[must_use]
    pub fn stem(&self) -> &'static str {
        match self {
            CellFunction::Inv => "INV",
            CellFunction::Buf => "BUF",
            CellFunction::Nand2 => "ND2",
            CellFunction::Nand3 => "ND3",
            CellFunction::Nor2 => "NR2",
            CellFunction::Nor3 => "NR3",
            CellFunction::And2 => "AN2",
            CellFunction::Or2 => "OR2",
            CellFunction::Xor2 => "XOR2",
            CellFunction::Xnor2 => "XNR2",
            CellFunction::Aoi21 => "AOI21",
            CellFunction::Aoi22 => "AOI22",
            CellFunction::Oai21 => "OAI21",
            CellFunction::Oai22 => "OAI22",
            CellFunction::Mux2 => "MUX2",
            CellFunction::Mux4 => "MUX4",
            CellFunction::Dff => "DFF",
            CellFunction::TieHi => "TIEH",
            CellFunction::TieLo => "TIEL",
            CellFunction::ClkBuf => "CKBUF",
            CellFunction::Bridge => "BRIDGE",
            CellFunction::PowerTap => "PWRTAP",
            CellFunction::Filler => "FILL",
        }
    }

    /// Evaluates the combinational function for the given inputs (in the
    /// [`input_names`](Self::input_names) order).
    ///
    /// For the DFF this evaluates the *next-state* function (returns `D`);
    /// the simulator applies it on clock edges.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match [`input_count`](Self::input_count),
    /// or when called on a cell without an output (power tap, filler).
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "wrong input count for {self:?}"
        );
        match self {
            CellFunction::Inv => !inputs[0],
            CellFunction::Buf | CellFunction::ClkBuf | CellFunction::Bridge => inputs[0],
            CellFunction::Nand2 => !(inputs[0] & inputs[1]),
            CellFunction::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellFunction::Nor2 => !(inputs[0] | inputs[1]),
            CellFunction::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellFunction::And2 => inputs[0] & inputs[1],
            CellFunction::Or2 => inputs[0] | inputs[1],
            CellFunction::Xor2 => inputs[0] ^ inputs[1],
            CellFunction::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellFunction::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellFunction::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            CellFunction::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellFunction::Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            CellFunction::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellFunction::Mux4 => {
                let sel = (inputs[5] as usize) << 1 | inputs[4] as usize;
                inputs[sel]
            }
            CellFunction::Dff => inputs[0],
            CellFunction::TieHi => true,
            CellFunction::TieLo => false,
            CellFunction::PowerTap | CellFunction::Filler => {
                panic!("{self:?} has no logic output")
            }
        }
    }
}

impl std::fmt::Display for CellFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.stem())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use CellFunction::*;
        assert!(Inv.eval(&[false]));
        assert!(!Inv.eval(&[true]));
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand2.eval(&[true, true]));
        assert!(!Nor2.eval(&[true, false]));
        assert!(Nor2.eval(&[false, false]));
        assert!(Xor2.eval(&[true, false]));
        assert!(!Xor2.eval(&[true, true]));
        assert!(Xnor2.eval(&[true, true]));
        // AOI21: !((A1&A2)|B)
        assert!(!Aoi21.eval(&[true, true, false]));
        assert!(Aoi21.eval(&[true, false, false]));
        // OAI22: !((A1|A2)&(B1|B2))
        assert!(Oai22.eval(&[false, false, true, true]));
        assert!(!Oai22.eval(&[true, false, false, true]));
        // MUX2 selects B when S is high.
        assert!(Mux2.eval(&[false, true, true]));
        assert!(!Mux2.eval(&[false, true, false]));
        // MUX4 decodes S1:S0.
        assert!(Mux4.eval(&[false, false, true, false, false, true]));
        assert!(TieHi.eval(&[]));
        assert!(!TieLo.eval(&[]));
    }

    #[test]
    fn mux4_exhaustive_select() {
        for sel in 0..4usize {
            let mut inputs = [false; 6];
            inputs[sel] = true;
            inputs[4] = sel & 1 != 0;
            inputs[5] = sel & 2 != 0;
            assert!(CellFunction::Mux4.eval(&inputs), "sel = {sel}");
        }
    }

    #[test]
    fn input_counts_match_names() {
        use CellFunction::*;
        for f in [
            Inv, Buf, Nand2, Nand3, Nor2, Nor3, And2, Or2, Xor2, Xnor2, Aoi21, Aoi22, Oai21, Oai22,
            Mux2, Mux4, Dff, TieHi, TieLo, ClkBuf, PowerTap, Filler,
        ] {
            assert_eq!(f.input_names().len(), f.input_count(), "{f:?}");
        }
    }

    #[test]
    fn split_gate_cells_are_the_sequential_and_tg_ones() {
        assert!(CellFunction::Dff.uses_split_gate());
        assert!(CellFunction::Mux2.uses_split_gate());
        assert!(!CellFunction::Nand2.uses_split_gate());
        assert!(CellFunction::Aoi22.extra_drain_merge());
        assert!(!CellFunction::Inv.extra_drain_merge());
    }
}
