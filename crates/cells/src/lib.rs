//! Dual-sided standard-cell library for 3.5T FFET and 4T CFET.
//!
//! Models the cell libraries of the paper:
//!
//! * per-cell footprints following the Fig. 4 area comparison (FFET saves
//!   0.5T of height everywhere, extra width in the Split Gate cells
//!   MUX/DFF/XOR, and pays one CPP in AOI22/OAI22 for the extra Drain
//!   Merge),
//! * dual-sided pins: every FFET output pin is accessible from both wafer
//!   sides through its Drain Merge, and input pins can be *redistributed*
//!   between front and back — the `FPx BPy` design-of-experiments knob,
//! * characterized NLDM timing (via [`ffet_liberty`]) whose FFET-vs-CFET
//!   differences reproduce the paper's Table I mechanisms.
//!
//! # Example
//!
//! ```
//! use ffet_cells::{Library, CellKind, CellFunction, DriveStrength};
//! use ffet_tech::Technology;
//!
//! let mut lib = Library::new(Technology::ffet_3p5t());
//! lib.redistribute_input_pins(0.5, 42)?; // FP0.5 BP0.5
//! let inv = lib.cell_by_kind(CellKind::new(CellFunction::Inv, DriveStrength::D1))
//!     .expect("INVD1 exists");
//! assert_eq!(inv.name, "INVD1");
//! # Ok::<(), ffet_cells::RedistributeError>(())
//! ```

mod drive;
mod electrical;
mod function;
mod geometry;
mod library;

pub use drive::DriveStrength;
pub use electrical::electrical;
pub use function::CellFunction;
pub use geometry::{
    area_nm2, default_pins, fig4_area_comparison, pin_x_nm, width_cpp, AreaComparison,
    PinDirection, PinShape, PinSides,
};
pub use library::{Cell, CellId, CellKind, Library, RedistributeError};

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::Technology;

    #[test]
    fn fig4_average_scaling_near_12p5_percent_for_combinational() {
        let rows = fig4_area_comparison();
        let comb: Vec<_> = rows
            .iter()
            .filter(|r| !r.function.uses_split_gate() && !r.function.extra_drain_merge())
            .collect();
        let avg = comb.iter().map(|r| r.scaling).sum::<f64>() / comb.len() as f64;
        assert!((avg - 0.125).abs() < 0.01, "avg = {avg}");
    }

    #[test]
    fn both_libraries_build() {
        let f = Library::new(Technology::ffet_3p5t());
        let c = Library::new(Technology::cfet_4t());
        assert_eq!(f.cells().len(), c.cells().len());
    }
}
