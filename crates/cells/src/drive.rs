/// Drive strength of a library cell (transistor-width multiple of D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DriveStrength {
    /// Unit drive.
    #[default]
    D1,
    /// Double drive.
    D2,
    /// Quadruple drive.
    D4,
    /// Octuple drive.
    D8,
}

impl DriveStrength {
    /// All strengths, weakest first.
    pub const ALL: [DriveStrength; 4] = [
        DriveStrength::D1,
        DriveStrength::D2,
        DriveStrength::D4,
        DriveStrength::D8,
    ];

    /// Width multiple relative to D1.
    #[must_use]
    pub fn multiple(&self) -> f64 {
        match self {
            DriveStrength::D1 => 1.0,
            DriveStrength::D2 => 2.0,
            DriveStrength::D4 => 4.0,
            DriveStrength::D8 => 8.0,
        }
    }

    /// Next stronger drive, or `None` at D8. Used by the sizing loop.
    #[must_use]
    pub fn upsized(&self) -> Option<DriveStrength> {
        match self {
            DriveStrength::D1 => Some(DriveStrength::D2),
            DriveStrength::D2 => Some(DriveStrength::D4),
            DriveStrength::D4 => Some(DriveStrength::D8),
            DriveStrength::D8 => None,
        }
    }
}

impl std::fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveStrength::D1 => f.write_str("D1"),
            DriveStrength::D2 => f.write_str("D2"),
            DriveStrength::D4 => f.write_str("D4"),
            DriveStrength::D8 => f.write_str("D8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsizing_chain_terminates() {
        let mut d = DriveStrength::D1;
        let mut steps = 0;
        while let Some(next) = d.upsized() {
            assert!(next.multiple() > d.multiple());
            d = next;
            steps += 1;
        }
        assert_eq!(steps, 3);
        assert_eq!(d, DriveStrength::D8);
    }
}
