use crate::drive::DriveStrength;
use crate::function::CellFunction;
use crate::geometry::width_cpp;
use ffet_liberty::CellElectrical;
use ffet_tech::TechKind;

/// Intrinsic two-fin transistor drive resistances at D1, kΩ. Both
/// technologies share these — the paper assumes "the same two-fin
/// transistor structure and the same intrinsic transistor characteristics".
const R_PFET_KOHM: f64 = 6.5;
const R_NFET_KOHM: f64 = 5.0;

/// Gate capacitance of one two-fin input at D1, fF (identical across
/// technologies for the same reason).
const C_GATE_FF: f64 = 0.45;

/// Leakage of one D1 inverter-equivalent, nW (identical across
/// technologies — Table I reports exactly 0.0% difference).
const LEAKAGE_NW: f64 = 0.8;

/// Output-node parasitic per CPP of cell width, fF. Nearly equal between
/// the technologies: the CFET output pays the supervia landing, the FFET
/// output pays the Drain Merge — which is why Table I shows INV transition
/// power within ±0.3%.
const C_OUT_PER_CPP_CFET: f64 = 0.120;
const C_OUT_PER_CPP_FFET: f64 = 0.122;

/// Internal-node parasitic per CPP, fF. This is where the technologies
/// differ: CFET internal nodes must hop between the stacked devices through
/// supervias, FFET internal nodes stay on a single side. The gap drives the
/// large BUF/DFF gains of Table I.
const C_INT_PER_CPP_CFET: f64 = 0.115;
const C_INT_PER_CPP_FFET: f64 = 0.070;

/// Fixed series via resistance in each switching path, kΩ at D1 (scaled by
/// √drive as wider cells parallel more via cuts).
///
/// CFET: the M0 output track connects to the stacked pair through the
/// supervia stack, penalising the pull-down loop most in this library
/// style; FFET connects the frontside nFET directly to frontside M0 and
/// pays only the Drain Merge on the pull-up.
const VIA_UP_CFET: f64 = 0.25;
const VIA_DOWN_CFET: f64 = 0.45;
const VIA_UP_FFET: f64 = 0.15;
const VIA_DOWN_FFET: f64 = 0.05;

/// Worst-case pull-network resistance multipliers `(up, down)` relative to
/// a single transistor, from the series stacking of each function.
fn network_factors(function: CellFunction) -> (f64, f64) {
    use CellFunction::*;
    match function {
        Inv | Buf | ClkBuf | Bridge | TieHi | TieLo => (1.0, 1.0),
        Nand2 => (1.0, 2.0),
        Nand3 => (1.0, 3.0),
        Nor2 => (2.0, 1.0),
        Nor3 => (3.0, 1.0),
        And2 => (1.0, 2.0),
        Or2 => (2.0, 1.0),
        // Transmission-gate based: one TG in series with a drive stage.
        Xor2 | Xnor2 | Mux2 | Mux4 | Dff => (1.5, 1.5),
        Aoi21 | Oai21 => (2.0, 2.0),
        Aoi22 | Oai22 => (2.0, 2.0),
        PowerTap | Filler => (1.0, 1.0),
    }
}

/// Number of cascaded stages in the delay path of each function.
fn stage_count(function: CellFunction) -> usize {
    use CellFunction::*;
    match function {
        Buf | ClkBuf | Bridge | And2 | Or2 | Xor2 | Xnor2 | Mux2 => 2,
        Mux4 => 3,
        Dff => 3,
        _ => 1,
    }
}

/// Setup requirement of sequential cells at D1, ps.
const DFF_SETUP_PS: f64 = 16.0;

/// Builds the electrical model of one library cell for the given
/// technology. This is the single place where the FFET/CFET physical
/// differences (supervia vs Drain Merge, single- vs dual-sided intra-cell
/// routing) enter the library.
#[must_use]
pub fn electrical(kind: TechKind, function: CellFunction, drive: DriveStrength) -> CellElectrical {
    let m = drive.multiple();
    let (fu, fd) = network_factors(function);
    let w1 = width_cpp(kind, function, DriveStrength::D1) as f64;
    let (c_out_per, c_int_per, via_up, via_down) = match kind {
        TechKind::Cfet4t => (
            C_OUT_PER_CPP_CFET,
            C_INT_PER_CPP_CFET,
            VIA_UP_CFET,
            VIA_DOWN_CFET,
        ),
        TechKind::Ffet3p5t => (
            C_OUT_PER_CPP_FFET,
            C_INT_PER_CPP_FFET,
            VIA_UP_FFET,
            VIA_DOWN_FFET,
        ),
    };
    let via_scale = m.sqrt();
    CellElectrical {
        inputs: function.input_count(),
        drive: m,
        pull_up_res_kohm: R_PFET_KOHM * fu,
        pull_down_res_kohm: R_NFET_KOHM * fd,
        pull_up_via_kohm: via_up / via_scale * fu,
        pull_down_via_kohm: via_down / via_scale * fd,
        output_parasitic_ff: c_out_per * w1,
        internal_parasitic_ff: c_int_per * w1,
        input_cap_ff: C_GATE_FF,
        leakage_nw: LEAKAGE_NW
            * stage_count(function) as f64
            * (function.input_count().max(1) as f64).sqrt(),
        stages: stage_count(function),
        is_sequential: function.is_sequential(),
        setup_ps: if function.is_sequential() {
            DFF_SETUP_PS
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_liberty::{characterize, CharacterizeConfig};

    fn kpis(kind: TechKind, f: CellFunction, d: DriveStrength) -> (f64, f64, f64, f64) {
        let cfg = CharacterizeConfig::default();
        let t = characterize(&electrical(kind, f, d), &cfg);
        let arc = &t.arcs[0];
        let (s, l) = (10.0, 4.0 * d.multiple());
        (
            arc.delay_rise.lookup(s, l),
            arc.delay_fall.lookup(s, l),
            t.transition_energy(s, l),
            t.leakage_nw,
        )
    }

    #[test]
    fn leakage_identical_across_technologies() {
        // Table I: leakage diff is exactly 0.0% for every cell.
        for f in [CellFunction::Inv, CellFunction::Buf, CellFunction::Dff] {
            for d in [DriveStrength::D1, DriveStrength::D4] {
                let (_, _, _, lc) = kpis(TechKind::Cfet4t, f, d);
                let (_, _, _, lf) = kpis(TechKind::Ffet3p5t, f, d);
                assert_eq!(lc, lf, "{f:?} {d}");
            }
        }
    }

    #[test]
    fn ffet_inverter_faster_especially_on_fall() {
        // Table I: INVD1 rise −2.5%, fall −8.1%.
        let (rc, fc, _, _) = kpis(TechKind::Cfet4t, CellFunction::Inv, DriveStrength::D1);
        let (rf, ff, _, _) = kpis(TechKind::Ffet3p5t, CellFunction::Inv, DriveStrength::D1);
        let rise_diff = rf / rc - 1.0;
        let fall_diff = ff / fc - 1.0;
        assert!(rise_diff < 0.0, "rise diff {rise_diff}");
        assert!(
            fall_diff < rise_diff,
            "fall should improve more: {fall_diff} vs {rise_diff}"
        );
        assert!(fall_diff > -0.25, "fall diff too extreme: {fall_diff}");
    }

    #[test]
    fn ffet_buffer_gains_exceed_inverter_gains() {
        // Table I: BUF timing improves by 10–16%, INV by 2–14%; BUF
        // transition power improves 3–12% while INV stays ~flat.
        let (_, fc_i, ec_i, _) = kpis(TechKind::Cfet4t, CellFunction::Inv, DriveStrength::D2);
        let (_, ff_i, ef_i, _) = kpis(TechKind::Ffet3p5t, CellFunction::Inv, DriveStrength::D2);
        let (_, fc_b, ec_b, _) = kpis(TechKind::Cfet4t, CellFunction::Buf, DriveStrength::D2);
        let (_, ff_b, ef_b, _) = kpis(TechKind::Ffet3p5t, CellFunction::Buf, DriveStrength::D2);

        let inv_energy_diff = (ef_i / ec_i - 1.0).abs();
        let buf_energy_diff = ef_b / ec_b - 1.0;
        assert!(
            inv_energy_diff < 0.05,
            "INV transition power ~flat: {inv_energy_diff}"
        );
        assert!(
            buf_energy_diff < -0.03,
            "BUF transition power improves: {buf_energy_diff}"
        );

        let inv_fall = ff_i / fc_i - 1.0;
        let buf_fall = ff_b / fc_b - 1.0;
        assert!(
            buf_fall < inv_fall,
            "BUF fall {buf_fall} vs INV fall {inv_fall}"
        );
    }

    #[test]
    fn stacked_networks_slow_the_matching_edge() {
        let cfg = CharacterizeConfig::default();
        let nand = characterize(
            &electrical(TechKind::Ffet3p5t, CellFunction::Nand2, DriveStrength::D1),
            &cfg,
        );
        let inv = characterize(
            &electrical(TechKind::Ffet3p5t, CellFunction::Inv, DriveStrength::D1),
            &cfg,
        );
        // NAND2 pull-down is two series nFETs: fall is slower than INV's.
        assert!(
            nand.arcs[0].delay_fall.lookup(10.0, 4.0) > inv.arcs[0].delay_fall.lookup(10.0, 4.0)
        );
    }

    #[test]
    fn dff_is_sequential_with_setup() {
        let e = electrical(TechKind::Ffet3p5t, CellFunction::Dff, DriveStrength::D1);
        assert!(e.is_sequential);
        assert!(e.setup_ps > 0.0);
        assert_eq!(e.stages, 3);
    }
}
