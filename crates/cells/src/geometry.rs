use crate::drive::DriveStrength;
use crate::function::CellFunction;
use ffet_geom::Nm;
use ffet_tech::{Side, TechKind, Technology};

/// Footprint widths in CPP at D1 for one cell function: `(cfet, ffet,
/// slope)`. Width at drive `m` is `base + slope × (m − 1)` CPP.
///
/// The bases encode Fig. 4: most cells share the same CPP count in both
/// technologies (the FFET saving is then the 0.5T height), the Split Gate
/// cells (XOR/XNOR/MUX/DFF) are narrower in FFET, and AOI22/OAI22 pay one
/// extra CPP in FFET for the additional Drain Merge.
fn width_model(function: CellFunction) -> (i64, i64, i64) {
    use CellFunction::*;
    match function {
        Inv => (2, 2, 1),
        Buf | ClkBuf => (3, 3, 1),
        // Bridging cells pay extra CPP for the side-transfer hookup.
        Bridge => (4, 4, 1),
        Nand2 | Nor2 => (3, 3, 1),
        Nand3 | Nor3 => (4, 4, 1),
        And2 | Or2 => (4, 4, 1),
        Xor2 => (6, 5, 1),
        Xnor2 => (6, 5, 1),
        Aoi21 | Oai21 => (4, 4, 1),
        Aoi22 | Oai22 => (5, 6, 1),
        Mux2 => (7, 6, 1),
        Mux4 => (15, 13, 2),
        Dff => (16, 13, 2),
        TieHi | TieLo => (2, 2, 0),
        PowerTap => (2, 2, 0),
        Filler => (1, 1, 0),
    }
}

/// Cell width in CPP for the given technology and drive.
#[must_use]
pub fn width_cpp(kind: TechKind, function: CellFunction, drive: DriveStrength) -> i64 {
    let (cfet, ffet, slope) = width_model(function);
    let base = match kind {
        TechKind::Cfet4t => cfet,
        TechKind::Ffet3p5t => ffet,
    };
    base + slope * (drive.multiple() as i64 - 1)
}

/// Cell area in nm² for the given technology and drive.
#[must_use]
pub fn area_nm2(tech: &Technology, function: CellFunction, drive: DriveStrength) -> i128 {
    let w = width_cpp(tech.kind(), function, drive) * tech.cpp();
    i128::from(w) * i128::from(tech.cell_height())
}

/// One row of the Fig. 4 cell-area comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaComparison {
    /// Cell function compared.
    pub function: CellFunction,
    /// 4T CFET cell area, nm².
    pub cfet_nm2: i128,
    /// 3.5T FFET cell area, nm².
    pub ffet_nm2: i128,
    /// Relative FFET scaling, `1 − ffet/cfet` (positive = FFET smaller).
    pub scaling: f64,
}

/// Computes the Fig. 4 area comparison for the paper's cell set at D1.
#[must_use]
pub fn fig4_area_comparison() -> Vec<AreaComparison> {
    let ffet = Technology::ffet_3p5t();
    let cfet = Technology::cfet_4t();
    CellFunction::FIG4_SET
        .iter()
        .map(|&f| {
            let c = area_nm2(&cfet, f, DriveStrength::D1);
            let s = area_nm2(&ffet, f, DriveStrength::D1);
            AreaComparison {
                function: f,
                cfet_nm2: c,
                ffet_nm2: s,
                scaling: 1.0 - s as f64 / c as f64,
            }
        })
        .collect()
}

/// Geometric shape of one pin on a cell template.
///
/// Pin positions are kept in CPP offsets from the cell's left edge; the
/// vertical position is the cell mid-height (pins land on M0 tracks that
/// the router reaches through via stacks, so only the horizontal position
/// matters for inter-cell routing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinShape {
    /// Pin name (library convention, e.g. `A1`, `CK`, `Y`).
    pub name: String,
    /// Signal direction.
    pub direction: PinDirection,
    /// Wafer side(s) the pin is accessible from. Output pins of FFET cells
    /// are dual-sided (Drain Merge); input pins live on exactly one side.
    pub sides: PinSides,
    /// Horizontal offset from the cell's left edge, in CPP.
    pub offset_cpp: i64,
}

/// Direction of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDirection {
    /// Signal input.
    Input,
    /// Signal output.
    Output,
}

/// Which wafer side(s) a pin is accessible from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinSides {
    /// Accessible from one side only.
    One(Side),
    /// Accessible from both sides (the FFET dual-sided output pin).
    Both,
}

impl PinSides {
    /// Whether the pin can be reached from `side`.
    #[must_use]
    pub fn accessible_from(&self, side: Side) -> bool {
        match self {
            PinSides::One(s) => *s == side,
            PinSides::Both => true,
        }
    }

    /// The single side, if one-sided.
    #[must_use]
    pub fn single(&self) -> Option<Side> {
        match self {
            PinSides::One(s) => Some(*s),
            PinSides::Both => None,
        }
    }
}

/// Builds default pin shapes for a cell: inputs spread across the cell
/// width on the front side, output near the right edge (dual-sided when
/// the technology supports backside pins).
#[must_use]
pub fn default_pins(
    tech: &Technology,
    function: CellFunction,
    drive: DriveStrength,
) -> Vec<PinShape> {
    let width = width_cpp(tech.kind(), function, drive);
    let names = function.input_names();
    let n = names.len() as i64;
    // Bridging cells receive on the backside — that transfer is their
    // entire purpose (only meaningful where backside pins exist).
    let input_side = if function == CellFunction::Bridge && tech.supports_pins_on(Side::Back) {
        Side::Back
    } else {
        Side::Front
    };
    let mut pins: Vec<PinShape> = names
        .iter()
        .enumerate()
        .map(|(i, name)| PinShape {
            name: (*name).to_owned(),
            direction: PinDirection::Input,
            sides: PinSides::One(input_side),
            offset_cpp: (i as i64 + 1) * width / (n + 1),
        })
        .collect();
    if function.has_output() {
        let sides = if tech.supports_pins_on(Side::Back) {
            PinSides::Both
        } else {
            PinSides::One(Side::Front)
        };
        pins.push(PinShape {
            name: if function.is_sequential() { "Q" } else { "Y" }.to_owned(),
            direction: PinDirection::Output,
            sides,
            offset_cpp: (width - 1).max(0),
        });
    }
    pins
}

/// Converts a pin's CPP offset to a physical x offset in nm.
#[must_use]
pub fn pin_x_nm(tech: &Technology, pin: &PinShape) -> Nm {
    pin.offset_cpp * tech.cpp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_area_scaling_is_pure_height() {
        let rows = fig4_area_comparison();
        let inv = rows
            .iter()
            .find(|r| r.function == CellFunction::Inv)
            .unwrap();
        assert!((inv.scaling - 0.125).abs() < 1e-9);
    }

    #[test]
    fn split_gate_cells_save_extra_area() {
        let rows = fig4_area_comparison();
        let inv = rows
            .iter()
            .find(|r| r.function == CellFunction::Inv)
            .unwrap();
        let dff = rows
            .iter()
            .find(|r| r.function == CellFunction::Dff)
            .unwrap();
        let mux = rows
            .iter()
            .find(|r| r.function == CellFunction::Mux2)
            .unwrap();
        assert!(
            dff.scaling > inv.scaling + 0.1,
            "dff scaling {}",
            dff.scaling
        );
        assert!(
            mux.scaling > inv.scaling + 0.1,
            "mux scaling {}",
            mux.scaling
        );
    }

    #[test]
    fn aoi22_pays_drain_merge_penalty() {
        let rows = fig4_area_comparison();
        let aoi = rows
            .iter()
            .find(|r| r.function == CellFunction::Aoi22)
            .unwrap();
        // FFET AOI22 is wider, so its area scaling is below the 12.5% height
        // scaling (it can even be negative).
        assert!(aoi.scaling < 0.125);
    }

    #[test]
    fn width_grows_with_drive() {
        for kind in [TechKind::Ffet3p5t, TechKind::Cfet4t] {
            let mut last = 0;
            for d in DriveStrength::ALL {
                let w = width_cpp(kind, CellFunction::Inv, d);
                assert!(w > last);
                last = w;
            }
        }
    }

    #[test]
    fn ffet_output_pins_are_dual_sided() {
        let ffet = Technology::ffet_3p5t();
        let pins = default_pins(&ffet, CellFunction::Nand2, DriveStrength::D1);
        let out = pins
            .iter()
            .find(|p| p.direction == PinDirection::Output)
            .unwrap();
        assert_eq!(out.sides, PinSides::Both);

        let cfet = Technology::cfet_4t();
        let pins = default_pins(&cfet, CellFunction::Nand2, DriveStrength::D1);
        let out = pins
            .iter()
            .find(|p| p.direction == PinDirection::Output)
            .unwrap();
        assert_eq!(out.sides, PinSides::One(Side::Front));
    }

    #[test]
    fn pins_fit_inside_cell() {
        let ffet = Technology::ffet_3p5t();
        for f in CellFunction::FIG4_SET {
            for d in [DriveStrength::D1, DriveStrength::D4] {
                let w = width_cpp(ffet.kind(), f, d);
                for p in default_pins(&ffet, f, d) {
                    assert!(
                        p.offset_cpp >= 0 && p.offset_cpp < w,
                        "{f:?} {d} pin {}",
                        p.name
                    );
                }
            }
        }
    }
}
