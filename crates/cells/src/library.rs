use crate::drive::DriveStrength;
use crate::electrical::electrical;
use crate::function::CellFunction;
use crate::geometry::{default_pins, width_cpp, PinDirection, PinShape, PinSides};
use ffet_geom::FxHashMap;
use ffet_liberty::{characterize, CellTiming, CharacterizeConfig};
use ffet_tech::{Side, Technology};

/// Identifies a library cell template (index into [`Library::cells`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// A (function, drive) pair naming one library cell, e.g. `INV` × `D2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKind {
    /// Logic function.
    pub function: CellFunction,
    /// Drive strength.
    pub drive: DriveStrength,
}

impl CellKind {
    /// Creates a kind.
    #[must_use]
    pub fn new(function: CellFunction, drive: DriveStrength) -> CellKind {
        CellKind { function, drive }
    }

    /// Library cell name, e.g. `INVD4`; fixed-function cells (ties, power
    /// tap, filler) have no drive suffix.
    #[must_use]
    pub fn name(&self) -> String {
        if self.function.input_count() == 0 && !self.function.has_output()
            || matches!(self.function, CellFunction::TieHi | CellFunction::TieLo)
        {
            self.function.stem().to_owned()
        } else {
            format!("{}{}", self.function.stem(), self.drive)
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A fully characterized library cell: geometry, pins and timing.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Function and drive.
    pub kind: CellKind,
    /// Library name (`INVD1`…).
    pub name: String,
    /// Footprint width in CPP (placement sites).
    pub width_cpp: i64,
    /// Pin templates, inputs first (library order), then the output.
    pub pins: Vec<PinShape>,
    /// Characterized NLDM timing/power.
    pub timing: CellTiming,
}

impl Cell {
    /// Index of the output pin in [`Cell::pins`], if any.
    #[must_use]
    pub fn output_pin(&self) -> Option<usize> {
        self.pins
            .iter()
            .position(|p| p.direction == PinDirection::Output)
    }

    /// Input pin shapes in library order.
    pub fn input_pins(&self) -> impl Iterator<Item = &PinShape> {
        self.pins
            .iter()
            .filter(|p| p.direction == PinDirection::Input)
    }

    /// Input capacitance (fF) of input pin `index`.
    #[must_use]
    pub fn input_cap(&self, index: usize) -> f64 {
        self.timing.input_caps.get(index).copied().unwrap_or(0.0)
    }
}

/// Error from [`Library::redistribute_input_pins`].
#[derive(Debug, Clone, PartialEq)]
pub enum RedistributeError {
    /// The technology has no backside signal pins (CFET).
    BacksideUnsupported,
    /// Ratio outside `0.0..=1.0`.
    InvalidRatio(f64),
}

impl std::fmt::Display for RedistributeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedistributeError::BacksideUnsupported => {
                f.write_str("technology does not support backside input pins")
            }
            RedistributeError::InvalidRatio(r) => {
                write!(f, "backside pin ratio {r} outside 0.0..=1.0")
            }
        }
    }
}

impl std::error::Error for RedistributeError {}

/// A characterized dual-sided standard-cell library for one technology.
///
/// Construction characterizes every cell; [`Library::redistribute_input_pins`]
/// implements the paper's "input pin redistribution": rewriting the pin
/// sides in the (virtual) LEF so that a chosen fraction of input pins sits
/// on the wafer backside. Clock pins (`CK`) always stay frontside so that
/// the conventional CTS stage is unaffected.
#[derive(Debug, Clone)]
pub struct Library {
    tech: Technology,
    cells: Vec<Cell>,
    index: FxHashMap<CellKind, CellId>,
    back_ratio: f64,
}

impl Library {
    /// Builds and characterizes the full library for `tech`. All input pins
    /// start on the frontside (`FP1.0 BP0.0`).
    #[must_use]
    pub fn new(tech: Technology) -> Library {
        let cfg = CharacterizeConfig::default();
        let mut cells = Vec::new();
        let mut index = FxHashMap::default();
        for function in ALL_FUNCTIONS {
            for drive in drives_for(function) {
                let kind = CellKind::new(function, drive);
                let id = CellId(cells.len() as u32);
                let timing = characterize(&electrical(tech.kind(), function, drive), &cfg);
                cells.push(Cell {
                    kind,
                    name: kind.name(),
                    width_cpp: width_cpp(tech.kind(), function, drive),
                    pins: default_pins(&tech, function, drive),
                    timing,
                });
                index.insert(kind, id);
            }
        }
        Library {
            tech,
            cells,
            index,
            back_ratio: 0.0,
        }
    }

    /// The library's technology.
    #[must_use]
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// All cells, in id order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell template id by kind.
    #[must_use]
    pub fn id(&self, kind: CellKind) -> Option<CellId> {
        self.index.get(&kind).copied()
    }

    /// The cell template for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this library.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Convenience: the cell for a kind.
    #[must_use]
    pub fn cell_by_kind(&self, kind: CellKind) -> Option<&Cell> {
        self.id(kind).map(|id| self.cell(id))
    }

    /// The configured backside input-pin density ratio (`BPx` of the DoEs).
    #[must_use]
    pub fn backside_pin_ratio(&self) -> f64 {
        self.back_ratio
    }

    /// Redistributes input pins so that a fraction `back_ratio` of all
    /// redistributable input pins sits on the backside, deterministically
    /// from `seed`. Returns the number of pins placed on the backside.
    ///
    /// This is the paper's LEF rewrite: "their locations defined in the
    /// modified standard cell LEF files can be flexibly adjusted". Clock
    /// pins are excluded (CTS stays conventional).
    ///
    /// # Errors
    ///
    /// [`RedistributeError::BacksideUnsupported`] on CFET with nonzero
    /// ratio; [`RedistributeError::InvalidRatio`] for ratios outside 0..=1.
    pub fn redistribute_input_pins(
        &mut self,
        back_ratio: f64,
        seed: u64,
    ) -> Result<usize, RedistributeError> {
        if !(0.0..=1.0).contains(&back_ratio) {
            return Err(RedistributeError::InvalidRatio(back_ratio));
        }
        if back_ratio > 0.0 && !self.tech.supports_pins_on(Side::Back) {
            return Err(RedistributeError::BacksideUnsupported);
        }
        // Collect all redistributable pins, reset them to front.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for (ci, cell) in self.cells.iter_mut().enumerate() {
            if cell.kind.function == CellFunction::Bridge {
                continue; // a bridge's backside input IS its function
            }
            for (pi, pin) in cell.pins.iter_mut().enumerate() {
                if pin.direction == PinDirection::Input && pin.name != "CK" {
                    pin.sides = PinSides::One(Side::Front);
                    candidates.push((ci, pi));
                }
            }
        }
        // Deterministic shuffle, then flip the first `k` to the backside.
        let mut rng = SplitMix64::new(seed);
        for i in (1..candidates.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            candidates.swap(i, j);
        }
        let k = (back_ratio * candidates.len() as f64).round() as usize;
        for &(ci, pi) in candidates.iter().take(k) {
            self.cells[ci].pins[pi].sides = PinSides::One(Side::Back);
        }
        self.back_ratio = back_ratio;
        Ok(k)
    }

    /// Exports the characterized library as Liberty (`.lib`) text.
    ///
    /// ```
    /// use ffet_cells::Library;
    /// use ffet_tech::Technology;
    /// let lib = Library::new(Technology::ffet_3p5t());
    /// let text = lib.to_liberty();
    /// assert!(text.contains("cell (INVD1)"));
    /// ```
    #[must_use]
    pub fn to_liberty(&self) -> String {
        let name = match self.tech.kind() {
            ffet_tech::TechKind::Ffet3p5t => "ffet_3p5t",
            ffet_tech::TechKind::Cfet4t => "cfet_4t",
        };
        let cells: Vec<(String, ffet_liberty::CellTiming)> = self
            .cells
            .iter()
            .filter(|c| c.kind.function.has_output())
            .map(|c| (c.name.clone(), c.timing.clone()))
            .collect();
        ffet_liberty::write_liberty(name, &cells)
    }

    /// Measured fraction of redistributable input pins currently on the
    /// backside (for verifying a redistribution).
    #[must_use]
    pub fn measured_backside_ratio(&self) -> f64 {
        let mut total = 0usize;
        let mut back = 0usize;
        for cell in &self.cells {
            if cell.kind.function == CellFunction::Bridge {
                continue;
            }
            for pin in &cell.pins {
                if pin.direction == PinDirection::Input && pin.name != "CK" {
                    total += 1;
                    if pin.sides == PinSides::One(Side::Back) {
                        back += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            back as f64 / total as f64
        }
    }
}

/// Functions instantiated in every library.
const ALL_FUNCTIONS: [CellFunction; 23] = [
    CellFunction::Inv,
    CellFunction::Buf,
    CellFunction::Nand2,
    CellFunction::Nand3,
    CellFunction::Nor2,
    CellFunction::Nor3,
    CellFunction::And2,
    CellFunction::Or2,
    CellFunction::Xor2,
    CellFunction::Xnor2,
    CellFunction::Aoi21,
    CellFunction::Aoi22,
    CellFunction::Oai21,
    CellFunction::Oai22,
    CellFunction::Mux2,
    CellFunction::Mux4,
    CellFunction::Dff,
    CellFunction::TieHi,
    CellFunction::TieLo,
    CellFunction::ClkBuf,
    CellFunction::Bridge,
    CellFunction::PowerTap,
    CellFunction::Filler,
];

/// Drive strengths offered per function: INV/BUF/CKBUF get the full D1–D8
/// range (they are the sizing/buffering workhorses), logic gets D1–D4,
/// fixed cells a single variant.
fn drives_for(function: CellFunction) -> Vec<DriveStrength> {
    use CellFunction::*;
    match function {
        Inv | Buf | ClkBuf => DriveStrength::ALL.to_vec(),
        TieHi | TieLo | PowerTap | Filler => vec![DriveStrength::D1],
        _ => vec![DriveStrength::D1, DriveStrength::D2, DriveStrength::D4],
    }
}

/// Small deterministic RNG (splitmix64) so pin redistribution never depends
/// on an external crate or global state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::TechKind;

    #[test]
    fn library_builds_with_expected_cell_count() {
        let lib = Library::new(Technology::ffet_3p5t());
        // 3 full-range (4 drives) + 4 fixed (1) + 16 others (3 drives).
        assert_eq!(lib.cells().len(), 3 * 4 + 4 + 16 * 3);
        assert_eq!(lib.tech().kind(), TechKind::Ffet3p5t);
    }

    #[test]
    fn lookup_by_kind() {
        let lib = Library::new(Technology::cfet_4t());
        let kind = CellKind::new(CellFunction::Nand2, DriveStrength::D2);
        let cell = lib.cell_by_kind(kind).expect("ND2D2 exists");
        assert_eq!(cell.name, "ND2D2");
        assert_eq!(cell.pins.len(), 3);
        assert!(lib
            .cell_by_kind(CellKind::new(CellFunction::Nand2, DriveStrength::D8))
            .is_none());
    }

    #[test]
    fn redistribution_hits_requested_ratio() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        for ratio in [0.04, 0.16, 0.3, 0.4, 0.5] {
            let moved = lib
                .redistribute_input_pins(ratio, 42)
                .expect("ffet supports backside");
            assert!(moved > 0);
            let measured = lib.measured_backside_ratio();
            assert!(
                (measured - ratio).abs() < 0.02,
                "requested {ratio}, measured {measured}"
            );
        }
    }

    #[test]
    fn redistribution_is_deterministic() {
        let mut a = Library::new(Technology::ffet_3p5t());
        let mut b = Library::new(Technology::ffet_3p5t());
        a.redistribute_input_pins(0.5, 7).unwrap();
        b.redistribute_input_pins(0.5, 7).unwrap();
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            for (pa, pb) in ca.pins.iter().zip(&cb.pins) {
                assert_eq!(pa.sides, pb.sides, "{} {}", ca.name, pa.name);
            }
        }
    }

    #[test]
    fn clock_pins_never_move() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        lib.redistribute_input_pins(1.0, 3).unwrap();
        let dff = lib
            .cell_by_kind(CellKind::new(CellFunction::Dff, DriveStrength::D1))
            .unwrap();
        let ck = dff.pins.iter().find(|p| p.name == "CK").unwrap();
        assert_eq!(ck.sides, PinSides::One(Side::Front));
        // But the data pin did move.
        let d = dff.pins.iter().find(|p| p.name == "D").unwrap();
        assert_eq!(d.sides, PinSides::One(Side::Back));
    }

    #[test]
    fn cfet_rejects_backside_ratio() {
        let mut lib = Library::new(Technology::cfet_4t());
        assert_eq!(
            lib.redistribute_input_pins(0.5, 1),
            Err(RedistributeError::BacksideUnsupported)
        );
        assert!(lib.redistribute_input_pins(0.0, 1).is_ok());
    }

    #[test]
    fn invalid_ratio_rejected() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        assert!(matches!(
            lib.redistribute_input_pins(1.5, 1),
            Err(RedistributeError::InvalidRatio(_))
        ));
    }

    #[test]
    fn output_pins_found() {
        let lib = Library::new(Technology::ffet_3p5t());
        for cell in lib.cells() {
            if cell.kind.function.has_output() {
                assert!(cell.output_pin().is_some(), "{}", cell.name);
            } else {
                assert!(cell.output_pin().is_none(), "{}", cell.name);
            }
        }
    }
}
