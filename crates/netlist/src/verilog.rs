use crate::netlist::{Netlist, PortDirection};
use ffet_cells::Library;
use std::fmt::Write as _;

/// Writes the netlist as structural Verilog.
///
/// The output instantiates library cells by name with named port
/// connections, suitable for inspection or for feeding other tools. Bus
/// ports are emitted bit-blasted (`a[3]` becomes the escaped identifier
/// `\a[3] `), which keeps the writer exact without inferring bus ranges.
#[must_use]
pub fn to_verilog(netlist: &Netlist, library: &Library) -> String {
    let mut out = String::new();
    let escape = |name: &str| -> String {
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            name.to_owned()
        } else {
            format!("\\{name} ")
        }
    };

    let port_list: Vec<String> = netlist.ports().iter().map(|p| escape(&p.name)).collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        escape(netlist.name()),
        port_list.join(", ")
    );
    for port in netlist.ports() {
        let dir = match port.direction {
            PortDirection::Input => "input",
            PortDirection::Output => "output",
        };
        let _ = writeln!(out, "  {} {};", dir, escape(&port.name));
    }
    for net in netlist.nets() {
        // Ports already declare their nets.
        if netlist.ports().iter().any(|p| p.name == net.name) {
            continue;
        }
        let _ = writeln!(out, "  wire {};", escape(&net.name));
    }
    // Ports whose bound net carries a different name (e.g. an output port
    // attached to an auto-named gate output) are tied with an assign so the
    // text stays a faithful, parseable description.
    for port in netlist.ports() {
        let net_name = &netlist.net(port.net).name;
        if *net_name != port.name {
            let _ = writeln!(
                out,
                "  assign {} = {} ;",
                escape(&port.name),
                escape(net_name)
            );
        }
    }
    for inst in netlist.instances() {
        let cell = library.cell(inst.cell);
        let conns: Vec<String> = cell
            .pins
            .iter()
            .zip(&inst.conns)
            .filter_map(|(pin, conn)| {
                conn.map(|net| format!(".{}({})", pin.name, escape(&netlist.net(net).name)))
            })
            .collect();
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.name,
            escape(&inst.name),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use ffet_tech::Technology;

    #[test]
    fn emits_module_with_instances() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "top");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish();
        let v = to_verilog(&nl, &lib);
        assert!(v.contains("module top (a, y);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output y;"));
        assert!(v.contains("INVD1"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn escapes_bus_bit_names() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "top");
        let bus = b.input_bus("data", 2);
        let y = b.and2(bus[0], bus[1]);
        b.output("y", y);
        let nl = b.finish();
        let v = to_verilog(&nl, &lib);
        assert!(v.contains("\\data[0] "), "{v}");
    }
}
