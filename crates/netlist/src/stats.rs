use crate::netlist::Netlist;
use ffet_cells::{CellFunction, Library};
use std::collections::BTreeMap;

/// Aggregate statistics of a netlist under a library.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Instance count per cell function.
    pub by_function: BTreeMap<String, usize>,
    /// Total instance count.
    pub instances: usize,
    /// Sequential (DFF) instance count.
    pub sequential: usize,
    /// Net count.
    pub nets: usize,
    /// Total standard-cell area, nm².
    pub cell_area_nm2: i128,
    /// Average net degree (pins per net).
    pub avg_net_degree: f64,
    /// Total pin count over all connected instance pins.
    pub pins: usize,
}

/// Computes [`NetlistStats`].
#[must_use]
pub fn stats(netlist: &Netlist, library: &Library) -> NetlistStats {
    let tech = library.tech();
    let mut by_function = BTreeMap::new();
    let mut sequential = 0;
    let mut area: i128 = 0;
    let mut pins = 0;
    for inst in netlist.instances() {
        let cell = library.cell(inst.cell);
        *by_function
            .entry(cell.kind.function.stem().to_owned())
            .or_insert(0) += 1;
        if cell.kind.function == CellFunction::Dff {
            sequential += 1;
        }
        area += i128::from(cell.width_cpp * tech.cpp()) * i128::from(tech.cell_height());
        pins += inst.conns.iter().flatten().count();
    }
    let degrees: usize = netlist.nets().iter().map(super::netlist::Net::degree).sum();
    NetlistStats {
        by_function,
        instances: netlist.instances().len(),
        sequential,
        nets: netlist.nets().len(),
        cell_area_nm2: area,
        avg_net_degree: if netlist.nets().is_empty() {
            0.0
        } else {
            degrees as f64 / netlist.nets().len() as f64
        },
        pins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use ffet_tech::Technology;

    #[test]
    fn stats_count_functions_and_area() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let clk = b.input("clk");
        let x = b.input("x");
        let y = b.not(x);
        let q = b.dff(y, clk);
        b.output("q", q);
        let nl = b.finish();
        let s = stats(&nl, &lib);
        assert_eq!(s.instances, 2);
        assert_eq!(s.sequential, 1);
        assert_eq!(s.by_function["INV"], 1);
        assert_eq!(s.by_function["DFF"], 1);
        assert!(s.cell_area_nm2 > 0);
        assert_eq!(s.pins, 2 + 3);
    }
}
