use crate::ids::NetId;
use crate::netlist::{Netlist, PortDirection};
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};

/// Ergonomic builder for gate-level logic on top of a [`Netlist`].
///
/// Gate helpers create an instance plus its output net and return the
/// output [`NetId`], so combinational logic composes like expressions:
///
/// ```
/// use ffet_netlist::NetlistBuilder;
/// use ffet_cells::Library;
/// use ffet_tech::Technology;
///
/// let lib = Library::new(Technology::ffet_3p5t());
/// let mut b = NetlistBuilder::new(&lib, "adder_bit");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.xor2(a, c);
/// b.output("sum", sum);
/// let nl = b.finish();
/// assert_eq!(nl.instances().len(), 1);
/// ```
pub struct NetlistBuilder<'a> {
    library: &'a Library,
    netlist: Netlist,
    default_drive: DriveStrength,
    auto_net: u64,
    auto_inst: u64,
}

impl<'a> NetlistBuilder<'a> {
    /// Starts building a design named `name` over `library`.
    #[must_use]
    pub fn new(library: &'a Library, name: impl Into<String>) -> NetlistBuilder<'a> {
        NetlistBuilder {
            library,
            netlist: Netlist::new(name),
            default_drive: DriveStrength::D1,
            auto_net: 0,
            auto_inst: 0,
        }
    }

    /// Sets the drive strength used by subsequent gate helpers.
    pub fn set_default_drive(&mut self, drive: DriveStrength) {
        self.default_drive = drive;
    }

    /// The library this builder maps to.
    #[must_use]
    pub fn library(&self) -> &'a Library {
        self.library
    }

    /// Finishes and returns the netlist.
    #[must_use]
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    fn fresh_net(&mut self) -> NetId {
        let id = self.auto_net;
        self.auto_net += 1;
        self.netlist.add_net(format!("_n{id}"))
    }

    fn fresh_inst_name(&mut self, stem: &str) -> String {
        let id = self.auto_inst;
        self.auto_inst += 1;
        format!("{stem}_{id}")
    }

    /// Adds a primary input and returns its net.
    pub fn input(&mut self, name: &str) -> NetId {
        let net = self.netlist.add_net(name);
        self.netlist.add_port(name, PortDirection::Input, net);
        net
    }

    /// Adds a `width`-bit primary input bus `name[0..width]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(&format!("{name}[{i}]")))
            .collect()
    }

    /// Exposes `net` as the primary output `name`.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.netlist.add_port(name, PortDirection::Output, net);
    }

    /// Exposes a bus of nets as primary outputs `name[i]`, LSB first.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(&format!("{name}[{i}]"), n);
        }
    }

    /// Instantiates `function` at the builder's default drive with the
    /// given input nets; returns the new output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the function or the library
    /// lacks the cell.
    pub fn gate(&mut self, function: CellFunction, inputs: &[NetId]) -> NetId {
        self.gate_with_drive(function, self.default_drive, inputs)
    }

    /// Like [`gate`](Self::gate) with an explicit drive strength.
    pub fn gate_with_drive(
        &mut self,
        function: CellFunction,
        drive: DriveStrength,
        inputs: &[NetId],
    ) -> NetId {
        assert_eq!(
            inputs.len(),
            function.input_count(),
            "{function:?} takes {} inputs",
            function.input_count()
        );
        let kind = CellKind::new(function, drive);
        let cell = self
            .library
            .id(kind)
            .unwrap_or_else(|| panic!("library lacks {kind}"));
        let out = self.fresh_net();
        let mut conns: Vec<Option<NetId>> = inputs.iter().map(|&n| Some(n)).collect();
        conns.push(Some(out));
        let name = self.fresh_inst_name(function.stem());
        self.netlist.add_instance(self.library, name, cell, &conns);
        out
    }

    /// `!a`.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellFunction::Inv, &[a])
    }

    /// Buffer of `a`.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellFunction::Buf, &[a])
    }

    /// `a & b`.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::And2, &[a, b])
    }

    /// `a | b`.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Or2, &[a, b])
    }

    /// `!(a & b)`.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Nand2, &[a, b])
    }

    /// `!(a | b)`.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Nor2, &[a, b])
    }

    /// `a ^ b`.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Xor2, &[a, b])
    }

    /// `!(a ^ b)`.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Xnor2, &[a, b])
    }

    /// `s ? b : a`.
    pub fn mux2(&mut self, a: NetId, b: NetId, s: NetId) -> NetId {
        self.gate(CellFunction::Mux2, &[a, b, s])
    }

    /// `!((a1 & a2) | b)`.
    pub fn aoi21(&mut self, a1: NetId, a2: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Aoi21, &[a1, a2, b])
    }

    /// `!((a1 | a2) & b)`.
    pub fn oai21(&mut self, a1: NetId, a2: NetId, b: NetId) -> NetId {
        self.gate(CellFunction::Oai21, &[a1, a2, b])
    }

    /// Rising-edge D flip-flop; returns `Q`.
    pub fn dff(&mut self, d: NetId, clk: NetId) -> NetId {
        self.gate(CellFunction::Dff, &[d, clk])
    }

    /// Constant logic 1.
    pub fn one(&mut self) -> NetId {
        self.gate(CellFunction::TieHi, &[])
    }

    /// Constant logic 0.
    pub fn zero(&mut self) -> NetId {
        self.gate(CellFunction::TieLo, &[])
    }

    /// Wide AND via a balanced tree of 2-input gates.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list.
    pub fn and_tree(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(inputs, CellFunction::And2)
    }

    /// Wide OR via a balanced tree of 2-input gates.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list.
    pub fn or_tree(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(inputs, CellFunction::Or2)
    }

    /// Wide XOR via a balanced tree.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list.
    pub fn xor_tree(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(inputs, CellFunction::Xor2)
    }

    fn tree(&mut self, inputs: &[NetId], f: CellFunction) -> NetId {
        assert!(!inputs.is_empty(), "tree over empty inputs");
        let mut level: Vec<NetId> = inputs.to_vec();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        self.gate(f, &[pair[0], pair[1]])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        level[0]
    }

    /// `width`-bit 2:1 mux over buses, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if bus widths differ.
    pub fn mux2_bus(&mut self, a: &[NetId], b: &[NetId], s: NetId) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mux bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.mux2(x, y, s)).collect()
    }

    /// Ripple-carry adder over two buses; returns (sum bus, carry out).
    ///
    /// # Panics
    ///
    /// Panics if bus widths differ or are zero.
    pub fn adder(&mut self, a: &[NetId], b: &[NetId], carry_in: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "adder width mismatch");
        assert!(!a.is_empty(), "zero-width adder");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            // Full adder: s = x ^ y ^ c; c' = majority(x, y, c).
            let p = self.xor2(x, y);
            sum.push(self.xor2(p, carry));
            let g = self.and2(x, y);
            let t = self.and2(p, carry);
            carry = self.or2(g, t);
        }
        (sum, carry)
    }

    /// Direct access to the netlist under construction (for operations the
    /// helpers do not cover, e.g. marking the clock net).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::Technology;

    #[test]
    fn builds_expression_dag() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.and2(x, y);
        let t = b.not(s);
        b.output("t", t);
        let nl = b.finish();
        assert_eq!(nl.instances().len(), 2);
        assert_eq!(nl.ports().len(), 3);
        nl.check_consistency(&lib).unwrap();
    }

    #[test]
    fn trees_reduce_wide_inputs() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let ins = b.input_bus("a", 8);
        let out = b.and_tree(&ins);
        b.output("y", out);
        let nl = b.finish();
        // 8-input AND tree uses 7 two-input gates.
        assert_eq!(nl.instances().len(), 7);
        nl.check_consistency(&lib).unwrap();
    }

    #[test]
    fn adder_gate_count() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let zero = b.zero();
        let (sum, cout) = b.adder(&a, &c, zero);
        b.output_bus("s", &sum);
        b.output("cout", cout);
        let nl = b.finish();
        // 5 gates per full-adder bit + 1 tie cell.
        assert_eq!(nl.instances().len(), 4 * 5 + 1);
        nl.check_consistency(&lib).unwrap();
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn wrong_arity_panics() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input("x");
        let _ = b.gate(CellFunction::Nand2, &[x]);
    }
}
