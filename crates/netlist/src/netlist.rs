use crate::ids::{InstId, NetId, PinRef, PortId};
use ffet_cells::{CellId, Library, PinDirection};
use ffet_geom::FxHashMap;

/// Direction of a top-level port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Primary input (drives its net).
    Input,
    /// Primary output (sinks its net).
    Output,
}

/// A top-level port of the design.
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name (`clk`, `pc[3]`, …).
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// The net the port connects to.
    pub net: NetId,
}

/// One placed-or-placeable cell instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Library cell template.
    pub cell: CellId,
    /// Net connected to each library pin (indexed like `Cell::pins`);
    /// `None` for unconnected pins.
    pub conns: Vec<Option<NetId>>,
    /// Fixed instances (Power Tap Cells) may not be moved by placement.
    pub fixed: bool,
}

/// One signal net: a single driver and any number of sinks.
#[derive(Debug, Clone, Default)]
pub struct Net {
    /// Net name, unique within the netlist.
    pub name: String,
    /// Driving instance pin, if driven by a cell (otherwise a primary
    /// input drives it).
    pub driver: Option<PinRef>,
    /// Sink instance pins.
    pub sinks: Vec<PinRef>,
    /// Whether this net is the clock network (routed by CTS, not the
    /// signal router).
    pub is_clock: bool,
}

impl Net {
    /// Number of connected pins (driver + sinks).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.sinks.len() + usize::from(self.driver.is_some())
    }
}

/// A flat gate-level netlist over a [`Library`].
///
/// The netlist stores only topology; geometry lives in the placement/
/// routing results and electrical data in the library, so one netlist can
/// be implemented under many technologies and DoE configurations.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    instances: Vec<Instance>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    net_names: FxHashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            instances: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            net_names: FxHashMap::default(),
        }
    }

    /// Reassembles a netlist from its component lists, rebuilding the
    /// name→net index. This is the deserialization entry point for the
    /// stage cache: the lists must already satisfy the structural
    /// invariants (`check_consistency` holds for them under the library
    /// they were built with) — only name uniqueness is revalidated here,
    /// because a violated index invariant cannot be represented.
    ///
    /// # Errors
    ///
    /// Returns a description of the first duplicate net name.
    pub fn from_parts(
        name: String,
        instances: Vec<Instance>,
        nets: Vec<Net>,
        ports: Vec<Port>,
    ) -> Result<Netlist, String> {
        let mut net_names = FxHashMap::default();
        for (i, net) in nets.iter().enumerate() {
            if net_names
                .insert(net.name.clone(), NetId(i as u32))
                .is_some()
            {
                return Err(format!("duplicate net name {}", net.name));
            }
        }
        Ok(Netlist {
            name,
            instances,
            nets,
            ports,
            net_names,
        })
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All instances, indexable by [`InstId`].
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All nets, indexable by [`NetId`].
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All ports.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// The instance for `id`.
    #[must_use]
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// The net for `id`.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Mutable net access (used by buffering transforms).
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.0 as usize]
    }

    /// Mutable instance access (used by sizing transforms).
    pub fn instance_mut(&mut self, id: InstId) -> &mut Instance {
        &mut self.instances[id.0 as usize]
    }

    /// Looks a net up by name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Adds a net; names must be unique.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = NetId(self.nets.len() as u32);
        let prev = self.net_names.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate net name {name}");
        self.nets.push(Net {
            name,
            ..Net::default()
        });
        id
    }

    /// Adds an instance of `cell`, connecting `conns[i]` to library pin
    /// `i`. Driver/sink lists of the touched nets are updated.
    ///
    /// # Panics
    ///
    /// Panics if `conns` is longer than the cell's pin list or if an output
    /// pin lands on an already-driven net.
    pub fn add_instance(
        &mut self,
        library: &Library,
        name: impl Into<String>,
        cell: CellId,
        conns: &[Option<NetId>],
    ) -> InstId {
        let template = library.cell(cell);
        assert!(
            conns.len() <= template.pins.len(),
            "too many connections for {}",
            template.name
        );
        let id = InstId(self.instances.len() as u32);
        let mut padded = conns.to_vec();
        padded.resize(template.pins.len(), None);
        for (pin_idx, conn) in padded.iter().enumerate() {
            let Some(net) = conn else { continue };
            let pin_ref = PinRef::new(id, pin_idx);
            match template.pins[pin_idx].direction {
                PinDirection::Output => {
                    let n = &mut self.nets[net.0 as usize];
                    assert!(n.driver.is_none(), "net {} already driven", n.name);
                    n.driver = Some(pin_ref);
                }
                PinDirection::Input => {
                    self.nets[net.0 as usize].sinks.push(pin_ref);
                }
            }
        }
        self.instances.push(Instance {
            name: name.into(),
            cell,
            conns: padded,
            fixed: false,
        });
        id
    }

    /// Adds a top-level port bound to `net`.
    pub fn add_port(
        &mut self,
        name: impl Into<String>,
        direction: PortDirection,
        net: NetId,
    ) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            direction,
            net,
        });
        id
    }

    /// Marks `net` (typically the clock root) and everything it drives
    /// through clock buffers as clock nets. Only the root is marked here;
    /// CTS marks its buffered subtree as it builds it.
    pub fn mark_clock(&mut self, net: NetId) {
        self.nets[net.0 as usize].is_clock = true;
    }

    /// Rewires one sink pin from its current net to `to`. Used by buffering.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is not currently a sink of `from`.
    pub fn move_sink(&mut self, from: NetId, pin: PinRef, to: NetId) {
        let f = &mut self.nets[from.0 as usize];
        let pos = f
            .sinks
            .iter()
            .position(|p| *p == pin)
            .expect("pin is a sink of `from`");
        f.sinks.swap_remove(pos);
        self.nets[to.0 as usize].sinks.push(pin);
        self.instances[pin.inst.0 as usize].conns[pin.pin] = Some(to);
    }

    /// Verifies structural invariants: every pin connection is mirrored in
    /// the net driver/sink lists and vice versa. Returns the number of
    /// checked connections.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_consistency(&self, library: &Library) -> Result<usize, String> {
        let mut checked = 0;
        for (i, inst) in self.instances.iter().enumerate() {
            let template = library.cell(inst.cell);
            if inst.conns.len() != template.pins.len() {
                return Err(format!("instance {} pin count mismatch", inst.name));
            }
            for (pi, conn) in inst.conns.iter().enumerate() {
                let Some(net) = conn else { continue };
                let pin_ref = PinRef::new(InstId(i as u32), pi);
                let n = &self.nets[net.0 as usize];
                let listed = match template.pins[pi].direction {
                    PinDirection::Output => n.driver == Some(pin_ref),
                    PinDirection::Input => n.sinks.contains(&pin_ref),
                };
                if !listed {
                    return Err(format!(
                        "pin {}.{} connects to {} but is not listed there",
                        inst.name, template.pins[pi].name, n.name
                    ));
                }
                checked += 1;
            }
        }
        for net in &self.nets {
            if let Some(d) = net.driver {
                if self.instances[d.inst.0 as usize].conns[d.pin]
                    != self.net_names.get(&net.name).copied()
                {
                    return Err(format!("net {} driver back-reference broken", net.name));
                }
            }
            for s in &net.sinks {
                let inst = &self.instances[s.inst.0 as usize];
                if inst.conns[s.pin].map(|n| &self.nets[n.0 as usize].name) != Some(&net.name) {
                    return Err(format!("net {} sink back-reference broken", net.name));
                }
            }
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::{CellFunction, CellKind, DriveStrength};
    use ffet_tech::Technology;

    fn lib() -> Library {
        Library::new(Technology::ffet_3p5t())
    }

    #[test]
    fn wiring_updates_driver_and_sinks() {
        let lib = lib();
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let i = nl.add_instance(&lib, "u1", inv, &[Some(a), Some(y)]);
        assert_eq!(nl.net(y).driver, Some(PinRef::new(i, 1)));
        assert_eq!(nl.net(a).sinks, vec![PinRef::new(i, 0)]);
        assert_eq!(nl.check_consistency(&lib).unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_rejected() {
        let lib = lib();
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        nl.add_instance(&lib, "u1", inv, &[Some(a), Some(y)]);
        nl.add_instance(&lib, "u2", inv, &[Some(a), Some(y)]);
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_name_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_net("a");
        nl.add_net("a");
    }

    #[test]
    fn move_sink_rewires() {
        let lib = lib();
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        let i = nl.add_instance(&lib, "u1", inv, &[Some(a), Some(y)]);
        let pin = PinRef::new(i, 0);
        nl.move_sink(a, pin, b);
        assert!(nl.net(a).sinks.is_empty());
        assert_eq!(nl.net(b).sinks, vec![pin]);
        assert_eq!(nl.instance(i).conns[0], Some(b));
        nl.check_consistency(&lib).unwrap();
    }

    #[test]
    fn ports_attach_to_nets() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PortDirection::Input, a);
        assert_eq!(nl.ports().len(), 1);
        assert_eq!(nl.ports()[0].net, a);
    }
}
