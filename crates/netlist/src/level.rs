use crate::ids::InstId;
use crate::netlist::Netlist;
use ffet_cells::Library;

/// Result of levelizing a netlist: combinational instances in evaluation
/// order plus the per-instance logic level.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Combinational instances in a valid topological evaluation order.
    pub order: Vec<InstId>,
    /// Logic level per instance (0 for instances fed only by sources);
    /// sequential and source cells get level 0.
    pub levels: Vec<u32>,
    /// Maximum logic level (combinational depth).
    pub depth: u32,
}

/// Error: the netlist contains a combinational loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombLoopError {
    /// Name of one instance on the loop.
    pub instance: String,
}

impl std::fmt::Display for CombLoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "combinational loop through instance {}", self.instance)
    }
}

impl std::error::Error for CombLoopError {}

/// Computes a topological order of the combinational instances.
///
/// Sequential cells (DFFs) break the graph: their outputs are treated as
/// sources and their inputs as sinks, so a legal synchronous design always
/// levelizes.
///
/// # Errors
///
/// Returns [`CombLoopError`] if a combinational cycle exists.
pub fn levelize(netlist: &Netlist, library: &Library) -> Result<Levelization, CombLoopError> {
    let n = netlist.instances().len();
    let mut indegree = vec![0u32; n];
    let mut is_comb = vec![false; n];

    for (i, inst) in netlist.instances().iter().enumerate() {
        let f = library.cell(inst.cell).kind.function;
        is_comb[i] = !f.is_sequential() && f.has_output() && f.input_count() > 0;
    }

    // Edges: comb driver -> comb sink, counted per sink input pin.
    for net in netlist.nets() {
        let Some(driver) = net.driver else { continue };
        if !is_comb[driver.inst.0 as usize] {
            continue;
        }
        for sink in &net.sinks {
            if is_comb[sink.inst.0 as usize] {
                indegree[sink.inst.0 as usize] += 1;
            }
        }
    }

    let mut levels = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<InstId> = (0..n)
        .filter(|&i| is_comb[i] && indegree[i] == 0)
        .map(|i| InstId(i as u32))
        .collect();

    while let Some(inst) = queue.pop() {
        order.push(inst);
        let conns = &netlist.instance(inst).conns;
        let template = library.cell(netlist.instance(inst).cell);
        let Some(out_pin) = template.output_pin() else {
            continue;
        };
        let Some(out_net) = conns[out_pin] else {
            continue;
        };
        let my_level = levels[inst.0 as usize];
        for sink in &netlist.net(out_net).sinks {
            let si = sink.inst.0 as usize;
            if !is_comb[si] {
                continue;
            }
            levels[si] = levels[si].max(my_level + 1);
            indegree[si] -= 1;
            if indegree[si] == 0 {
                queue.push(sink.inst);
            }
        }
    }

    let comb_count = is_comb.iter().filter(|&&c| c).count();
    if order.len() != comb_count {
        let stuck = (0..n)
            .find(|&i| is_comb[i] && indegree[i] > 0)
            .expect("some instance is stuck on the loop");
        return Err(CombLoopError {
            instance: netlist.instances()[stuck].name.clone(),
        });
    }

    let depth = order
        .iter()
        .map(|i| levels[i.0 as usize])
        .max()
        .unwrap_or(0);
    Ok(Levelization {
        order,
        levels,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use ffet_cells::{CellFunction, CellKind, DriveStrength};
    use ffet_tech::Technology;

    #[test]
    fn chain_levelizes_in_order() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input("x");
        let a = b.not(x);
        let c = b.not(a);
        let d = b.not(c);
        b.output("y", d);
        let nl = b.finish();
        let lv = levelize(&nl, &lib).unwrap();
        assert_eq!(lv.order.len(), 3);
        assert_eq!(lv.depth, 2);
        // Order respects dependencies.
        let pos: Vec<usize> = (0..3)
            .map(|i| lv.order.iter().position(|o| o.0 == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn dffs_break_cycles() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let clk = b.input("clk");
        // q = dff(!q): a toggle flop — sequential loop, combinationally fine.
        let nl = {
            let q_feedback = b.netlist_mut().add_net("qb_loop");
            let inv = lib
                .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
                .unwrap();
            let dff = lib
                .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
                .unwrap();
            let q = b.netlist_mut().add_net("q");
            let library = b.library();
            b.netlist_mut()
                .add_instance(library, "u_inv", inv, &[Some(q), Some(q_feedback)]);
            b.netlist_mut().add_instance(
                library,
                "u_dff",
                dff,
                &[Some(q_feedback), Some(clk), Some(q)],
            );
            b.finish()
        };
        let lv = levelize(&nl, &lib).unwrap();
        assert_eq!(lv.order.len(), 1); // just the inverter
    }

    #[test]
    fn comb_loop_detected() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = crate::Netlist::new("loop");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_instance(&lib, "u1", inv, &[Some(a), Some(b)]);
        nl.add_instance(&lib, "u2", inv, &[Some(b), Some(a)]);
        let err = levelize(&nl, &lib).unwrap_err();
        assert!(err.instance.starts_with('u'));
    }
}
