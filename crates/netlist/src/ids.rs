/// Identifies an instance within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Identifies a net within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifies a top-level port within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// A reference to one pin of one instance: the `pin` index addresses the
/// instance's library-cell pin list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The instance.
    pub inst: InstId,
    /// Pin index in the library cell's `pins` list.
    pub pin: usize,
}

impl PinRef {
    /// Creates a pin reference.
    #[must_use]
    pub fn new(inst: InstId, pin: usize) -> PinRef {
        PinRef { inst, pin }
    }
}

impl std::fmt::Display for InstId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
