use crate::netlist::{Netlist, PortDirection};
use ffet_cells::Library;
use ffet_geom::FxHashMap;

/// Error from [`from_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verilog parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseVerilogError {}

/// Parses the structural-Verilog subset emitted by [`crate::to_verilog`]:
/// one module with scalar (possibly escaped `\name `) ports and wires, and
/// named-connection instantiations of library cells.
///
/// Exact inverse of the writer: `from_verilog(to_verilog(n)) == n` up to
/// net/instance ordering (which the writer preserves, so round trips are
/// in fact identical).
///
/// # Errors
///
/// [`ParseVerilogError`] with a line number on malformed input, unknown
/// cells, or connection mistakes (duplicate drivers surface as panics in
/// the netlist builder — the writer never produces them).
pub fn from_verilog(text: &str, library: &Library) -> Result<Netlist, ParseVerilogError> {
    let cell_by_name: FxHashMap<&str, ffet_cells::CellId> = library
        .cells()
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), ffet_cells::CellId(i as u32)))
        .collect();

    let mut netlist: Option<Netlist> = None;
    let mut pending_ports: Vec<(String, PortDirection)> = Vec::new();
    let mut declared: FxHashMap<String, crate::ids::NetId> = FxHashMap::default();

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let stmt = raw.trim();
        if stmt.is_empty() || stmt.starts_with("//") {
            continue;
        }
        let err = |message: String| ParseVerilogError { line, message };

        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest
                .split('(')
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err("missing module name".into()))?;
            netlist = Some(Netlist::new(unescape(name)));
            continue;
        }
        if stmt == "endmodule" {
            break;
        }
        let nl = netlist
            .as_mut()
            .ok_or_else(|| err("statement before module header".into()))?;

        if let Some(rest) = stmt.strip_prefix("input ") {
            // Binding is deferred to endmodule: an assign may alias this
            // port onto a differently-named net.
            let name = unescape(rest.trim_end_matches(';').trim());
            pending_ports.push((name, PortDirection::Input));
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("output ") {
            let name = unescape(rest.trim_end_matches(';').trim());
            pending_ports.push((name, PortDirection::Output));
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("assign ") {
            // `assign port = net ;` — the port aliases an existing net.
            let body = rest.trim_end_matches(';').trim();
            let (lhs, rhs) = body
                .split_once('=')
                .ok_or_else(|| err(format!("bad assign `{body}`")))?;
            let (lhs, rhs) = (unescape(lhs), unescape(rhs));
            let net = *declared
                .entry(rhs.clone())
                .or_insert_with(|| nl.add_net(rhs));
            declared.insert(lhs, net);
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("wire ") {
            let name = unescape(rest.trim_end_matches(';').trim());
            declared
                .entry(name.clone())
                .or_insert_with(|| nl.add_net(name));
            continue;
        }

        // Instance: CELLNAME inst_name (.PIN(net), ...);
        let open = stmt
            .find('(')
            .ok_or_else(|| err("expected instantiation".into()))?;
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(err(format!("bad instance header `{}`", &stmt[..open])));
        }
        let cell = *cell_by_name
            .get(head[0])
            .ok_or_else(|| err(format!("unknown cell `{}`", head[0])))?;
        let inst_name = unescape(head[1]);
        let tail = stmt[open + 1..].trim_end();
        let body = tail
            .strip_suffix(';')
            .map(str::trim_end)
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| err("instance not terminated with `);`".into()))?;
        let template = library.cell(cell);
        let mut conns = vec![None; template.pins.len()];
        for part in split_connections(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (pin_name, net_name) = part
                .strip_prefix('.')
                .and_then(|p| p.split_once('('))
                .map(|(pin, rest)| (pin.trim(), rest.trim_end_matches(')').trim()))
                .ok_or_else(|| err(format!("bad connection `{part}`")))?;
            if net_name.is_empty() {
                // `.PIN()` — explicitly unconnected.
                continue;
            }
            let pin_idx = template
                .pins
                .iter()
                .position(|p| p.name == pin_name)
                .ok_or_else(|| err(format!("cell {} has no pin {pin_name}", template.name)))?;
            let net_name = unescape(net_name);
            let net = *declared
                .entry(net_name.clone())
                .or_insert_with(|| nl.add_net(net_name));
            conns[pin_idx] = Some(net);
        }
        nl.add_instance(library, inst_name, cell, &conns);
    }

    let mut nl = netlist.ok_or(ParseVerilogError {
        line: 0,
        message: "no module found".into(),
    })?;
    for (name, dir) in pending_ports {
        // Unreferenced ports (e.g. an unused input) still need a net.
        let net = match declared.get(&name) {
            Some(&n) => n,
            None => {
                let n = nl.add_net(name.clone());
                declared.insert(name.clone(), n);
                n
            }
        };
        nl.add_port(name, dir, net);
    }
    Ok(nl)
}

/// Splits an instance body at top-level commas (names cannot contain
/// commas in this subset, so a plain split suffices).
fn split_connections(body: &str) -> impl Iterator<Item = &str> {
    body.split("),").map(|p| {
        let p = p.trim();
        if p.ends_with(')') {
            p
        } else {
            // split removed the closing paren; the caller re-trims it.
            p
        }
    })
}

/// Strips the `\name ` escape used for bus-bit identifiers.
fn unescape(name: &str) -> String {
    name.trim()
        .strip_prefix('\\')
        .map_or_else(|| name.trim().to_owned(), |n| n.trim().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::verilog::to_verilog;
    use ffet_tech::Technology;

    #[test]
    fn roundtrip_small_design() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "top");
        let clk = b.input("clk");
        let bus = b.input_bus("data", 4);
        let x = b.xor_tree(&bus);
        let q = b.dff(x, clk);
        b.output("q", q);
        let original = b.finish();

        let text = to_verilog(&original, &lib);
        let parsed = from_verilog(&text, &lib).expect("parses");
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.instances().len(), original.instances().len());
        assert_eq!(parsed.nets().len(), original.nets().len());
        assert_eq!(parsed.ports().len(), original.ports().len());
        parsed.check_consistency(&lib).expect("consistent");
        // Behavioural equivalence via simulation.
        let bus_a: Vec<_> = (0..4)
            .map(|i| original.net_by_name(&format!("data[{i}]")).unwrap())
            .collect();
        let bus_b: Vec<_> = (0..4)
            .map(|i| parsed.net_by_name(&format!("data[{i}]")).unwrap())
            .collect();
        let q_a = original.ports().iter().find(|p| p.name == "q").unwrap().net;
        let q_b = parsed.ports().iter().find(|p| p.name == "q").unwrap().net;
        let mut sim_a = crate::sim::Simulator::new(&original, &lib).unwrap();
        let mut sim_b = crate::sim::Simulator::new(&parsed, &lib).unwrap();
        for value in 0..16u64 {
            sim_a.set_bus(&bus_a, value);
            sim_a.settle();
            sim_a.clock_edge();
            sim_b.set_bus(&bus_b, value);
            sim_b.settle();
            sim_b.clock_edge();
            assert_eq!(sim_a.get(q_a), sim_b.get(q_b), "value {value}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let lib = Library::new(Technology::ffet_3p5t());
        let bad = "module t (a);\n  input a;\n  BOGUS u1 (.A(a));\nendmodule\n";
        let e = from_verilog(bad, &lib).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("BOGUS"));
    }

    #[test]
    fn unknown_pin_rejected() {
        let lib = Library::new(Technology::ffet_3p5t());
        let bad = "module t (a);\n  input a;\n  wire y;\n  INVD1 u1 (.Q(a), .Y(y));\nendmodule\n";
        let e = from_verilog(bad, &lib).unwrap_err();
        assert!(e.message.contains("no pin Q"), "{e}");
    }
}
