//! Flat gate-level netlist, builders, levelization and simulation.
//!
//! The netlist is the hand-off between logic design ([`ffet_rv32`]'s core
//! generator), the synthesis-lite sizing stage, and physical implementation
//! ([`ffet_pnr`]). It is deliberately flat (one level, arena-indexed ids):
//! placement and routing operate on instances and nets, not hierarchy.
//!
//! * [`NetlistBuilder`] — expression-style construction of gate logic,
//! * [`levelize`] — topological ordering + combinational-loop detection,
//! * [`Simulator`] — 2-value cycle simulation for functional verification,
//! * [`to_verilog`] — structural-Verilog export,
//! * [`stats`] — area/composition summaries used by the experiments.
//!
//! [`ffet_rv32`]: ../ffet_rv32/index.html
//! [`ffet_pnr`]: ../ffet_pnr/index.html

mod builder;
mod ids;
mod level;
mod netlist;
mod sim;
mod stats;
mod verilog;
mod verilog_parser;

pub use builder::NetlistBuilder;
pub use ids::{InstId, NetId, PinRef, PortId};
pub use level::{levelize, CombLoopError, Levelization};
pub use netlist::{Instance, Net, Netlist, Port, PortDirection};
pub use sim::Simulator;
pub use stats::{stats, NetlistStats};
pub use verilog::to_verilog;
pub use verilog_parser::{from_verilog, ParseVerilogError};

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::Library;
    use ffet_geom::Rng64;
    use ffet_tech::Technology;

    #[test]
    fn random_adder_matches_reference() {
        let mut rng = Rng64::new(0xadd3);
        for _ in 0..16 {
            let width = rng.range_usize(1, 12);
            let lib = Library::new(Technology::ffet_3p5t());
            let mut b = NetlistBuilder::new(&lib, "prop_adder");
            let a = b.input_bus("a", width);
            let c = b.input_bus("b", width);
            let zero = b.zero();
            let (sum, cout) = b.adder(&a, &c, zero);
            b.output_bus("s", &sum);
            b.output("cout", cout);
            let nl = b.finish();
            nl.check_consistency(&lib).unwrap();
            let mut sim = Simulator::new(&nl, &lib).unwrap();
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            for _ in 0..4 {
                let (x, y) = (rng.next_u64() & mask, rng.next_u64() & mask);
                sim.set_bus(&a, x);
                sim.set_bus(&c, y);
                sim.settle();
                let got = sim.get_bus(&sum) | (u64::from(sim.get(cout)) << width);
                assert_eq!(got, x + y, "width {width}: {x} + {y}");
            }
        }
    }
}
