use crate::ids::{InstId, NetId};
use crate::level::{levelize, CombLoopError, Levelization};
use crate::netlist::Netlist;
use ffet_cells::{CellFunction, Library};

/// Two-value, cycle-accurate gate-level simulator.
///
/// Evaluation is levelized (all combinational gates re-evaluated in
/// topological order per step), which is simple, deterministic, and fast
/// enough for cosimulating the RV32 core against its reference model.
///
/// Driving convention: set primary inputs with [`Simulator::set`], then
/// [`Simulator::settle`] to propagate, and [`Simulator::clock_edge`] to
/// advance all flip-flops by one rising edge (inputs are sampled from the
/// settled pre-edge values, as in synchronous hardware).
///
/// ```
/// use ffet_netlist::{NetlistBuilder, Simulator};
/// use ffet_cells::Library;
/// use ffet_tech::Technology;
///
/// let lib = Library::new(Technology::ffet_3p5t());
/// let mut b = NetlistBuilder::new(&lib, "t");
/// let x = b.input("x");
/// let y = b.not(x);
/// b.output("y", y);
/// let nl = b.finish();
/// let mut sim = Simulator::new(&nl, &lib)?;
/// sim.set(x, true);
/// sim.settle();
/// assert!(!sim.get(y));
/// # Ok::<(), ffet_netlist::CombLoopError>(())
/// ```
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    levelization: Levelization,
    values: Vec<bool>,
    /// DFF instances and their (d_net, q_net).
    dffs: Vec<(InstId, NetId, NetId)>,
    state: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator; levelizes the design.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the design has a combinational loop.
    pub fn new(netlist: &'a Netlist, library: &'a Library) -> Result<Simulator<'a>, CombLoopError> {
        let levelization = levelize(netlist, library)?;
        let mut dffs = Vec::new();
        for (i, inst) in netlist.instances().iter().enumerate() {
            let cell = library.cell(inst.cell);
            if cell.kind.function == CellFunction::Dff {
                let d = inst.conns[0].expect("DFF D connected");
                let q = inst.conns[2].expect("DFF Q connected");
                dffs.push((InstId(i as u32), d, q));
            }
        }
        let state = vec![false; dffs.len()];
        Ok(Simulator {
            netlist,
            library,
            levelization,
            values: vec![false; netlist.nets().len()],
            dffs,
            state,
        })
    }

    /// Sets the value of a net (normally a primary input).
    pub fn set(&mut self, net: NetId, value: bool) {
        self.values[net.0 as usize] = value;
    }

    /// Current value of a net (valid after [`settle`](Self::settle)).
    #[must_use]
    pub fn get(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Reads a bus of nets as an integer, LSB first.
    #[must_use]
    pub fn get_bus(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | (u64::from(self.get(n)) << i))
    }

    /// Drives a bus of nets from an integer, LSB first.
    pub fn set_bus(&mut self, nets: &[NetId], value: u64) {
        for (i, &n) in nets.iter().enumerate() {
            self.set(n, (value >> i) & 1 == 1);
        }
    }

    /// Propagates all combinational logic from the current inputs and DFF
    /// states to every net.
    pub fn settle(&mut self) {
        // Sources first: flip-flop state on Q nets, constants from ties
        // (ties have no inputs, so they sit outside the levelized order).
        for (idx, &(_, _, q)) in self.dffs.iter().enumerate() {
            self.values[q.0 as usize] = self.state[idx];
        }
        for inst in self.netlist.instances() {
            let cell = self.library.cell(inst.cell);
            let constant = match cell.kind.function {
                CellFunction::TieHi => true,
                CellFunction::TieLo => false,
                _ => continue,
            };
            if let Some(net) = inst.conns[cell.output_pin().expect("tie output")] {
                self.values[net.0 as usize] = constant;
            }
        }
        // One pass in topological order settles every combinational net.
        for &inst_id in &self.levelization.order {
            let inst = self.netlist.instance(inst_id);
            let cell = self.library.cell(inst.cell);
            let f = cell.kind.function;
            let n_in = f.input_count();
            let mut inputs = [false; 8];
            for (i, slot) in inputs.iter_mut().take(n_in).enumerate() {
                if let Some(net) = inst.conns[i] {
                    *slot = self.values[net.0 as usize];
                }
            }
            let out = f.eval(&inputs[..n_in]);
            if let Some(out_pin) = cell.output_pin() {
                if let Some(net) = inst.conns[out_pin] {
                    self.values[net.0 as usize] = out;
                }
            }
        }
    }

    /// Applies one rising clock edge: samples every DFF's D from the
    /// settled values, updates state, and re-settles.
    pub fn clock_edge(&mut self) {
        let sampled: Vec<bool> = self
            .dffs
            .iter()
            .map(|&(_, d, _)| self.values[d.0 as usize])
            .collect();
        self.state.copy_from_slice(&sampled);
        self.settle();
    }

    /// Forces the internal state of every DFF (reset modelling).
    pub fn reset_state(&mut self, value: bool) {
        for s in &mut self.state {
            *s = value;
        }
        self.settle();
    }

    /// Number of flip-flops in the design.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Combinational depth (logic levels) of the design.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.levelization.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use ffet_tech::Technology;

    #[test]
    fn adder_computes_correct_sums() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let zero = b.zero();
        let (sum, cout) = b.adder(&a, &c, zero);
        b.output_bus("s", &sum);
        b.output("cout", cout);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (170, 85)] {
            sim.set_bus(&a, x);
            sim.set_bus(&c, y);
            sim.settle();
            let got = sim.get_bus(&sum) | (u64::from(sim.get(cout)) << 8);
            assert_eq!(got, x + y, "{x} + {y}");
        }
    }

    #[test]
    fn toggle_flop_toggles() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let clk = b.input("clk");
        let q = {
            let nl = b.netlist_mut();
            nl.add_net("q")
        };
        let qb = b.not(q);
        {
            use ffet_cells::{CellFunction, CellKind, DriveStrength};
            let dff = lib
                .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
                .unwrap();
            let library = b.library();
            b.netlist_mut()
                .add_instance(library, "u_dff", dff, &[Some(qb), Some(clk), Some(q)]);
        }
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.reset_state(false);
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.clock_edge();
            seen.push(sim.get(q));
        }
        assert_eq!(seen, vec![true, false, true, false]);
    }

    #[test]
    fn register_holds_value_between_edges() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let clk = b.input("clk");
        let d = b.input("d");
        let q = b.dff(d, clk);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.reset_state(false);
        sim.set(d, true);
        sim.settle();
        assert!(!sim.get(q), "value not latched before edge");
        sim.clock_edge();
        assert!(sim.get(q));
        sim.set(d, false);
        sim.settle();
        assert!(sim.get(q), "holds until next edge");
        sim.clock_edge();
        assert!(!sim.get(q));
    }

    #[test]
    fn tie_cells_drive_constants() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let one = b.one();
        let zero = b.zero();
        let y = b.and2(one, zero);
        let z = b.or2(one, zero);
        b.output("y", y);
        b.output("z", z);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.settle();
        assert!(!sim.get(y));
        assert!(sim.get(z));
    }
}
