use ffet_geom::Nm;

/// Design rules and scalar technology parameters.
///
/// The values mirror the paper's setup: 50 nm CPP, 30 nm M2 pitch (the track
/// unit), 64-CPP power-stripe pitch, and the validity rule that a P&R result
/// counts only if the total number of design-rule violations is below 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRules {
    /// Contacted poly pitch in nm; also the placement-site width.
    pub cpp: Nm,
    /// M2 pitch in nm; 1 "track" (T) of cell height equals one M2 pitch.
    pub m2_pitch: Nm,
    /// Cell height in half-tracks (7 = 3.5T FFET, 8 = 4T CFET), kept in
    /// half-track units so both heights stay integral.
    pub half_tracks: Nm,
    /// Pitch between backside power stripes, in CPP (64 in the paper).
    pub power_stripe_pitch_cpp: Nm,
    /// Width of one Power Tap Cell in CPP (FFET powerplan only).
    pub power_tap_width_cpp: Nm,
    /// A P&R result is valid only if total DRVs stay *below* this count.
    pub max_drv: u32,
    /// M0 signal tracks available for pins on the frontside of one cell row.
    pub m0_signal_tracks_front: u8,
    /// M0 signal tracks available for pins on the backside (0 for CFET).
    pub m0_signal_tracks_back: u8,
}

impl DesignRules {
    /// Rules for the 3.5T FFET: 3 signal tracks + 1 shared power rail per
    /// side, Power Tap Cells connecting the frontside VSS rails to the BSPDN.
    #[must_use]
    pub fn ffet_3p5t() -> DesignRules {
        DesignRules {
            cpp: 50,
            m2_pitch: 30,
            half_tracks: 7,
            power_stripe_pitch_cpp: 64,
            power_tap_width_cpp: 2,
            max_drv: 10,
            m0_signal_tracks_front: 3,
            m0_signal_tracks_back: 3,
        }
    }

    /// Rules for the 4T CFET baseline: all signal pins frontside, BSPDN via
    /// nTSV + buried power rail, no Power Tap Cells.
    #[must_use]
    pub fn cfet_4t() -> DesignRules {
        DesignRules {
            cpp: 50,
            m2_pitch: 30,
            half_tracks: 8,
            power_stripe_pitch_cpp: 64,
            power_tap_width_cpp: 0,
            max_drv: 10,
            m0_signal_tracks_front: 4,
            m0_signal_tracks_back: 0,
        }
    }

    /// Whether a run with `drv_count` violations is a valid P&R result.
    ///
    /// The paper: "we assume that a P&R result is valid only if the total
    /// design rule violation number is below 10".
    #[must_use]
    pub fn is_valid_run(&self, drv_count: u32) -> bool {
        drv_count < self.max_drv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_threshold_is_strict() {
        let r = DesignRules::ffet_3p5t();
        assert!(r.is_valid_run(0));
        assert!(r.is_valid_run(9));
        assert!(!r.is_valid_run(10));
        assert!(!r.is_valid_run(11));
    }

    #[test]
    fn cfet_has_no_power_taps_or_backside_tracks() {
        let r = DesignRules::cfet_4t();
        assert_eq!(r.power_tap_width_cpp, 0);
        assert_eq!(r.m0_signal_tracks_back, 0);
    }
}
