//! Virtual 5 nm PDK for the FFET evaluation framework.
//!
//! Encodes the technology data of the paper:
//!
//! * the dual-sided BEOL layer stacks of Table II (pitches for `FM0..FM12`,
//!   `Poly`, `BPR`, `BM0..BM12`) for both 4T CFET and 3.5T FFET,
//! * per-layer RC coefficients derived from those pitches,
//! * design rules (CPP, cell heights, 64-CPP power-stripe pitch, the
//!   "valid iff total DRV ≤ 10" rule),
//! * the [`RoutingPattern`] (`FMnBMm`) abstraction used by every design-space
//!   experiment.
//!
//! # Example
//!
//! ```
//! use ffet_tech::{Technology, RoutingPattern};
//!
//! let ffet = Technology::ffet_3p5t();
//! let cfet = Technology::cfet_4t();
//! assert!(ffet.cell_height() < cfet.cell_height());
//!
//! let pattern = RoutingPattern::new(6, 6)?; // FM6BM6
//! assert_eq!(pattern.total_layers(), 12);
//! # Ok::<(), ffet_tech::PatternError>(())
//! ```

mod layer;
mod pattern;
mod rules;
mod stack;

pub use layer::{
    Layer, LayerId, LayerPurpose, RcCoefficients, Side, VIA_CAPACITANCE_FF, VIA_RESISTANCE_OHM,
};
pub use pattern::{PatternError, RoutingPattern};
pub use rules::DesignRules;
pub use stack::LayerStack;

use ffet_geom::Nm;

/// Which stacked-transistor technology a design is implemented in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechKind {
    /// 3.5-track Flip FET with fully functional backside (pins on both
    /// sides, symmetric dual-sided M0).
    Ffet3p5t,
    /// 4-track Complementary FET with buried power rail and backside PDN;
    /// signal pins exist on the frontside only.
    Cfet4t,
}

impl std::fmt::Display for TechKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechKind::Ffet3p5t => f.write_str("3.5T FFET"),
            TechKind::Cfet4t => f.write_str("4T CFET"),
        }
    }
}

/// A complete technology description: layer stack, rules, and derived
/// quantities used by placement, routing, extraction and characterization.
#[derive(Debug, Clone)]
pub struct Technology {
    kind: TechKind,
    stack: LayerStack,
    rules: DesignRules,
}

impl Technology {
    /// The 3.5T FFET technology of the paper (Table II, right column).
    #[must_use]
    pub fn ffet_3p5t() -> Technology {
        Technology {
            kind: TechKind::Ffet3p5t,
            stack: LayerStack::ffet_3p5t(),
            rules: DesignRules::ffet_3p5t(),
        }
    }

    /// The 4T CFET baseline technology (Table II, left column).
    #[must_use]
    pub fn cfet_4t() -> Technology {
        Technology {
            kind: TechKind::Cfet4t,
            stack: LayerStack::cfet_4t(),
            rules: DesignRules::cfet_4t(),
        }
    }

    /// Which technology this is.
    #[must_use]
    pub fn kind(&self) -> TechKind {
        self.kind
    }

    /// The BEOL layer stack.
    #[must_use]
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Design rules.
    #[must_use]
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Standard-cell height in nanometres.
    ///
    /// 1 track (T) is defined as one M2 pitch (30 nm); the FFET cell is 3.5T
    /// and the CFET cell 4T, giving the 12.5% cell-height scaling of Fig. 1.
    #[must_use]
    pub fn cell_height(&self) -> Nm {
        // Track heights are half-integer for FFET, so compute in half-tracks.
        self.rules.half_tracks * self.rules.m2_pitch / 2
    }

    /// Contacted poly pitch (CPP) — the placement-site width.
    #[must_use]
    pub fn cpp(&self) -> Nm {
        self.rules.cpp
    }

    /// Power-stripe pitch in nanometres (64 CPP in the paper).
    #[must_use]
    pub fn power_stripe_pitch(&self) -> Nm {
        self.rules.power_stripe_pitch_cpp * self.rules.cpp
    }

    /// Whether standard cells may expose signal pins on the given side.
    ///
    /// Only the FFET has inherent backside pins; CFET cells are
    /// frontside-only (backside signals would require bridging cells).
    #[must_use]
    pub fn supports_pins_on(&self, side: Side) -> bool {
        match side {
            Side::Front => true,
            Side::Back => self.kind == TechKind::Ffet3p5t,
        }
    }

    /// Maximum routing pattern this technology supports.
    ///
    /// CFET reserves BM1/BM2 for the PDN, so its signal routing is
    /// frontside-only (`FM12BM0`); FFET can route signals on up to 12 layers
    /// per side (`FM12BM12`).
    #[must_use]
    pub fn max_routing_pattern(&self) -> RoutingPattern {
        match self.kind {
            TechKind::Ffet3p5t => RoutingPattern::new(12, 12).expect("static pattern"),
            TechKind::Cfet4t => RoutingPattern::new(12, 0).expect("static pattern"),
        }
    }

    /// Validates that `pattern` is legal for this technology.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BacksideUnavailable`] when a backside signal
    /// layer is requested on CFET.
    pub fn check_pattern(&self, pattern: RoutingPattern) -> Result<(), PatternError> {
        if pattern.back_layers() > 0 && self.kind == TechKind::Cfet4t {
            return Err(PatternError::BacksideUnavailable);
        }
        Ok(())
    }
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_heights_match_track_definitions() {
        // 1T = 1 M2 pitch = 30nm: FFET 3.5T = 105nm, CFET 4T = 120nm.
        assert_eq!(Technology::ffet_3p5t().cell_height(), 105);
        assert_eq!(Technology::cfet_4t().cell_height(), 120);
    }

    #[test]
    fn ffet_cell_height_scales_12p5_percent() {
        let ffet = Technology::ffet_3p5t().cell_height() as f64;
        let cfet = Technology::cfet_4t().cell_height() as f64;
        let scaling = 1.0 - ffet / cfet;
        assert!((scaling - 0.125).abs() < 1e-9, "scaling = {scaling}");
    }

    #[test]
    fn power_stripe_pitch_is_64_cpp() {
        let t = Technology::ffet_3p5t();
        assert_eq!(t.power_stripe_pitch(), 64 * 50);
    }

    #[test]
    fn cfet_rejects_backside_signal_pattern() {
        let cfet = Technology::cfet_4t();
        let pat = RoutingPattern::new(6, 6).unwrap();
        assert_eq!(
            cfet.check_pattern(pat),
            Err(PatternError::BacksideUnavailable)
        );
        assert!(cfet
            .check_pattern(RoutingPattern::new(12, 0).unwrap())
            .is_ok());
    }

    #[test]
    fn pin_side_support() {
        assert!(Technology::ffet_3p5t().supports_pins_on(Side::Back));
        assert!(!Technology::cfet_4t().supports_pins_on(Side::Back));
    }
}
