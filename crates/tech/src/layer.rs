use ffet_geom::{Axis, Nm};

/// Which side of the wafer a layer or pin is on.
///
/// The FFET process flips the wafer, producing an (almost) symmetric BEOL on
/// both sides; the CFET baseline only has a thin backside stack for power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// Frontside of the wafer (conventional BEOL).
    Front,
    /// Backside of the wafer.
    Back,
}

impl Side {
    /// The opposite wafer side.
    #[must_use]
    pub fn opposite(self) -> Side {
        match self {
            Side::Front => Side::Back,
            Side::Back => Side::Front,
        }
    }

    /// Metal-name prefix used in LEF/DEF output: `F` or `B`.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            Side::Front => "F",
            Side::Back => "B",
        }
    }

    /// Both sides, front first.
    pub const BOTH: [Side; 2] = [Side::Front, Side::Back];
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Front => f.write_str("front"),
            Side::Back => f.write_str("back"),
        }
    }
}

/// Identifies a metal layer by wafer side and index (`FM3` = front, 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId {
    /// Wafer side the layer is on.
    pub side: Side,
    /// Metal index: 0 is the cell-level M0, 12 the topmost metal.
    pub index: u8,
}

impl LayerId {
    /// Creates a layer id.
    #[must_use]
    pub const fn new(side: Side, index: u8) -> LayerId {
        LayerId { side, index }
    }

    /// Canonical name, e.g. `FM2` or `BM11`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}M{}", self.side.prefix(), self.index)
    }

    /// Parses a canonical layer name (`FM0`…`BM12`).
    #[must_use]
    pub fn parse(name: &str) -> Option<LayerId> {
        let side = match name.as_bytes().first()? {
            b'F' => Side::Front,
            b'B' => Side::Back,
            _ => return None,
        };
        let rest = name.get(1..)?.strip_prefix('M')?;
        let index: u8 = rest.parse().ok()?;
        (index <= 12).then_some(LayerId { side, index })
    }

    /// Preferred routing direction: metal indices alternate, with M0
    /// horizontal (running along the cell), M1 vertical, M2 horizontal…
    /// The tight-pitch even layers (M2 = 30 nm) carry the horizontal
    /// traffic that row-based blocks are heavy in.
    ///
    /// Both wafer sides use the same parity so that the merged dual-sided
    /// stack remains consistent for extraction.
    #[must_use]
    pub fn axis(&self) -> Axis {
        if self.index.is_multiple_of(2) {
            Axis::Horizontal
        } else {
            Axis::Vertical
        }
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}M{}", self.side.prefix(), self.index)
    }
}

/// What a layer may legally carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerPurpose {
    /// Intra-cell routing only (FM0/BM0); never used by the inter-cell
    /// router, matching the paper's definition of "routing layers".
    IntraCell,
    /// Inter-cell signal routing (and PDN on the topmost layers).
    Signal,
    /// Power delivery only — CFET's BM1/BM2 carry the backside PDN and are
    /// not available for signals.
    PowerOnly,
}

/// Per-unit-length RC coefficients of a metal layer.
///
/// Derived from the layer pitch with a conventional scaling model: wire
/// resistance grows quadratically as the pitch shrinks (width and thickness
/// both scale with pitch), while capacitance per length is mostly geometric
/// with a coupling term that grows at tight pitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcCoefficients {
    /// Resistance in ohm per nanometre of wire.
    pub r_ohm_per_nm: f64,
    /// Capacitance in femtofarad per nanometre of wire.
    pub c_ff_per_nm: f64,
}

impl RcCoefficients {
    /// Derives coefficients from a layer pitch in nanometres.
    ///
    /// Calibrated so a 30 nm-pitch layer (M2 class) is ≈1 Ω/nm and
    /// ≈0.2 fF/µm, in the range published for 5 nm-class BEOL.
    #[must_use]
    pub fn from_pitch(pitch: Nm) -> RcCoefficients {
        let p = pitch as f64;
        let half = p / 2.0; // drawn wire width ≈ half pitch
        RcCoefficients {
            r_ohm_per_nm: 225.0 / (half * half),
            c_ff_per_nm: 1.3e-4 + 2.1e-3 / p,
        }
    }
}

/// A single metal layer of the stack: identity, pitch, purpose and RC.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer identity (side + metal index).
    pub id: LayerId,
    /// Track pitch in nanometres (Table II).
    pub pitch: Nm,
    /// What the layer may carry.
    pub purpose: LayerPurpose,
    /// Per-length RC coefficients.
    pub rc: RcCoefficients,
}

impl Layer {
    /// Creates a layer, deriving RC coefficients from the pitch.
    #[must_use]
    pub fn new(id: LayerId, pitch: Nm, purpose: LayerPurpose) -> Layer {
        Layer {
            id,
            pitch,
            purpose,
            rc: RcCoefficients::from_pitch(pitch),
        }
    }

    /// Whether the inter-cell signal router may use this layer.
    #[must_use]
    pub fn is_signal_routable(&self) -> bool {
        self.purpose == LayerPurpose::Signal
    }
}

/// Resistance of a single inter-layer via cut, in ohms.
///
/// One value is used for all standard via cuts; the nTSV that connects the
/// CFET buried power rail to the backside PDN is modelled separately in the
/// power network.
pub const VIA_RESISTANCE_OHM: f64 = 18.0;

/// Capacitance contributed by one via cut, in femtofarads.
pub const VIA_CAPACITANCE_FF: f64 = 0.015;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_names() {
        assert_eq!(LayerId::new(Side::Front, 0).name(), "FM0");
        assert_eq!(LayerId::new(Side::Back, 11).name(), "BM11");
    }

    #[test]
    fn layer_name_roundtrip() {
        for side in Side::BOTH {
            for index in 0..=12 {
                let id = LayerId::new(side, index);
                assert_eq!(LayerId::parse(&id.name()), Some(id));
            }
        }
        assert_eq!(LayerId::parse("M3"), None);
        assert_eq!(LayerId::parse("FM13"), None);
        assert_eq!(LayerId::parse("FX2"), None);
    }

    #[test]
    fn axes_alternate_with_index() {
        assert_eq!(LayerId::new(Side::Front, 0).axis(), Axis::Horizontal);
        assert_eq!(LayerId::new(Side::Front, 1).axis(), Axis::Vertical);
        assert_eq!(LayerId::new(Side::Back, 2).axis(), Axis::Horizontal);
    }

    #[test]
    fn tighter_pitch_means_higher_resistance() {
        let tight = RcCoefficients::from_pitch(30);
        let loose = RcCoefficients::from_pitch(720);
        assert!(tight.r_ohm_per_nm > loose.r_ohm_per_nm * 100.0);
        assert!(tight.c_ff_per_nm > loose.c_ff_per_nm);
    }

    #[test]
    fn m2_class_rc_in_expected_range() {
        let rc = RcCoefficients::from_pitch(30);
        assert!(
            (0.5..2.0).contains(&rc.r_ohm_per_nm),
            "r = {}",
            rc.r_ohm_per_nm
        );
        // 0.2 fF/µm ≈ 2e-4 fF/nm.
        assert!(
            (1.5e-4..3.0e-4).contains(&rc.c_ff_per_nm),
            "c = {}",
            rc.c_ff_per_nm
        );
    }

    #[test]
    fn side_opposite_roundtrip() {
        assert_eq!(Side::Front.opposite().opposite(), Side::Front);
    }
}
