use crate::layer::{Layer, LayerId, LayerPurpose, Side};
use ffet_geom::Nm;

/// The full dual-sided BEOL layer stack of a technology (Table II).
///
/// Layers are stored per side, indexed by metal number. FM0/BM0 exist on the
/// list but are [`LayerPurpose::IntraCell`]: the paper's "routing layers"
/// exclude them.
#[derive(Debug, Clone)]
pub struct LayerStack {
    front: Vec<Layer>,
    back: Vec<Layer>,
    /// Poly (gate) pitch in nm — the CPP.
    pub poly_pitch: Nm,
    /// Buried-power-rail pitch, CFET only.
    pub bpr_pitch: Option<Nm>,
}

/// Pitch table shared by both technologies' frontside (Table II): index 0..=12.
fn front_pitches() -> [Nm; 13] {
    [
        28, // FM0
        34, // FM1
        30, // FM2
        42, 42, // FM3-4
        76, 76, 76, 76, 76, 76,  // FM5-10
        126, // FM11
        720, // FM12
    ]
}

impl LayerStack {
    /// The 3.5T FFET stack: symmetric front and back signal stacks.
    #[must_use]
    pub fn ffet_3p5t() -> LayerStack {
        let make = |side: Side| -> Vec<Layer> {
            front_pitches()
                .iter()
                .enumerate()
                .map(|(i, &pitch)| {
                    let purpose = if i == 0 {
                        LayerPurpose::IntraCell
                    } else {
                        LayerPurpose::Signal
                    };
                    Layer::new(LayerId::new(side, i as u8), pitch, purpose)
                })
                .collect()
        };
        LayerStack {
            front: make(Side::Front),
            back: make(Side::Back),
            poly_pitch: 50,
            bpr_pitch: None,
        }
    }

    /// The 4T CFET stack: full frontside, backside restricted to the
    /// PDN-only BM1 (3200 nm) and BM2 (2400 nm) plus the 120 nm BPR.
    #[must_use]
    pub fn cfet_4t() -> LayerStack {
        let front = front_pitches()
            .iter()
            .enumerate()
            .map(|(i, &pitch)| {
                let purpose = if i == 0 {
                    LayerPurpose::IntraCell
                } else {
                    LayerPurpose::Signal
                };
                Layer::new(LayerId::new(Side::Front, i as u8), pitch, purpose)
            })
            .collect();
        let back = vec![
            Layer::new(LayerId::new(Side::Back, 1), 3200, LayerPurpose::PowerOnly),
            Layer::new(LayerId::new(Side::Back, 2), 2400, LayerPurpose::PowerOnly),
        ];
        LayerStack {
            front,
            back,
            poly_pitch: 50,
            bpr_pitch: Some(120),
        }
    }

    /// Looks up a layer by id.
    #[must_use]
    pub fn layer(&self, id: LayerId) -> Option<&Layer> {
        let list = match id.side {
            Side::Front => &self.front,
            Side::Back => &self.back,
        };
        list.iter().find(|l| l.id == id)
    }

    /// All layers on one side, lowest metal first.
    #[must_use]
    pub fn side(&self, side: Side) -> &[Layer] {
        match side {
            Side::Front => &self.front,
            Side::Back => &self.back,
        }
    }

    /// Signal-routable layers on `side` with index `1..=max_index`, lowest
    /// first. This is what an `FMn`/`BMm` routing pattern resolves to.
    #[must_use]
    pub fn routing_layers(&self, side: Side, max_index: u8) -> Vec<&Layer> {
        self.side(side)
            .iter()
            .filter(|l| l.is_signal_routable() && l.id.index >= 1 && l.id.index <= max_index)
            .collect()
    }

    /// Iterates over every layer on both sides.
    pub fn iter(&self) -> impl Iterator<Item = &Layer> {
        self.front.iter().chain(self.back.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_front_pitches() {
        let s = LayerStack::ffet_3p5t();
        let expect = [
            (0, 28),
            (1, 34),
            (2, 30),
            (3, 42),
            (4, 42),
            (5, 76),
            (10, 76),
            (11, 126),
            (12, 720),
        ];
        for (idx, pitch) in expect {
            let l = s
                .layer(LayerId::new(Side::Front, idx))
                .expect("layer exists");
            assert_eq!(l.pitch, pitch, "FM{idx}");
        }
    }

    #[test]
    fn ffet_backside_mirrors_frontside() {
        let s = LayerStack::ffet_3p5t();
        for i in 0..=12u8 {
            let f = s.layer(LayerId::new(Side::Front, i)).unwrap();
            let b = s.layer(LayerId::new(Side::Back, i)).unwrap();
            assert_eq!(f.pitch, b.pitch, "M{i}");
            assert_eq!(f.purpose, b.purpose, "M{i}");
        }
    }

    #[test]
    fn cfet_backside_is_power_only() {
        let s = LayerStack::cfet_4t();
        assert_eq!(s.layer(LayerId::new(Side::Back, 1)).unwrap().pitch, 3200);
        assert_eq!(s.layer(LayerId::new(Side::Back, 2)).unwrap().pitch, 2400);
        assert!(s
            .side(Side::Back)
            .iter()
            .all(|l| l.purpose == LayerPurpose::PowerOnly));
        assert!(s.routing_layers(Side::Back, 12).is_empty());
        assert_eq!(s.bpr_pitch, Some(120));
    }

    #[test]
    fn routing_layers_exclude_m0() {
        let s = LayerStack::ffet_3p5t();
        let layers = s.routing_layers(Side::Front, 12);
        assert_eq!(layers.len(), 12);
        assert!(layers.iter().all(|l| l.id.index >= 1));

        let six = s.routing_layers(Side::Back, 6);
        assert_eq!(six.len(), 6);
        assert_eq!(six.last().unwrap().id.index, 6);
    }
}
