/// A BEOL routing-layer configuration, written `FMnBMm` in the paper: the
/// inter-cell router may use front metals `FM1..=FMn` and back metals
/// `BM1..=BMm`.
///
/// `FM12BM0` is the paper's "FFET FM12" (single-sided signal routing);
/// `FM12BM12` is the maximal dual-sided configuration.
///
/// ```
/// use ffet_tech::RoutingPattern;
/// let p = RoutingPattern::new(8, 4)?;
/// assert_eq!(p.to_string(), "FM8BM4");
/// assert_eq!(p.total_layers(), 12);
/// assert!(p.is_dual_sided());
/// # Ok::<(), ffet_tech::PatternError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutingPattern {
    front: u8,
    back: u8,
}

impl RoutingPattern {
    /// Creates a pattern with `front` frontside and `back` backside routing
    /// layers.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::NoFrontLayers`] if `front == 0` (cells always
    /// need at least FM1 for pin escape) or [`PatternError::TooManyLayers`]
    /// if either side exceeds the 12-layer stack.
    pub fn new(front: u8, back: u8) -> Result<RoutingPattern, PatternError> {
        if front == 0 {
            return Err(PatternError::NoFrontLayers);
        }
        if front > 12 || back > 12 {
            return Err(PatternError::TooManyLayers { front, back });
        }
        Ok(RoutingPattern { front, back })
    }

    /// The maximal single-sided pattern, `FM12BM0` — the paper's "FFET
    /// FM12" baseline. Infallible by construction (12 front layers is the
    /// full stack, 0 back layers is always legal).
    #[must_use]
    pub const fn max_single_sided() -> RoutingPattern {
        RoutingPattern { front: 12, back: 0 }
    }

    /// Infallible constructor for statically-known-legal configurations —
    /// experiment tables, fixed sweeps — where [`RoutingPattern::new`]'s
    /// error path would only ever be reachable through a typo in a
    /// literal. Out-of-range arguments are clamped into the legal stack
    /// (`front` to `1..=12`, `back` to `0..=12`); debug builds assert the
    /// arguments were legal to begin with, so the clamp never silently
    /// rewrites a live configuration in tested code.
    #[must_use]
    pub const fn fixed(front: u8, back: u8) -> RoutingPattern {
        debug_assert!(front >= 1 && front <= 12 && back <= 12);
        let front = if front == 0 {
            1
        } else if front > 12 {
            12
        } else {
            front
        };
        let back = if back > 12 { 12 } else { back };
        RoutingPattern { front, back }
    }

    /// Number of frontside routing layers (`n` in `FMn`).
    #[must_use]
    pub fn front_layers(&self) -> u8 {
        self.front
    }

    /// Number of backside routing layers (`m` in `BMm`).
    #[must_use]
    pub fn back_layers(&self) -> u8 {
        self.back
    }

    /// Total routing layers across both sides.
    #[must_use]
    pub fn total_layers(&self) -> u8 {
        self.front + self.back
    }

    /// Whether any backside signal layer is available.
    #[must_use]
    pub fn is_dual_sided(&self) -> bool {
        self.back > 0
    }

    /// All patterns with the given total layer count, front-heavy first:
    /// the co-optimization search space of Table III.
    #[must_use]
    pub fn with_total(total: u8) -> Vec<RoutingPattern> {
        (0..=total.min(12))
            .filter_map(|back| {
                let front = total - back;
                RoutingPattern::new(front, back).ok()
            })
            .collect()
    }
}

impl std::fmt::Display for RoutingPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FM{}BM{}", self.front, self.back)
    }
}

/// Error constructing a [`RoutingPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// Zero frontside layers requested.
    NoFrontLayers,
    /// More than 12 layers requested on a side.
    TooManyLayers {
        /// Requested frontside layer count.
        front: u8,
        /// Requested backside layer count.
        back: u8,
    },
    /// A backside signal layer was requested on a technology whose backside
    /// carries power only (CFET).
    BacksideUnavailable,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::NoFrontLayers => {
                f.write_str("routing pattern needs at least one frontside layer")
            }
            PatternError::TooManyLayers { front, back } => write!(
                f,
                "routing pattern FM{front}BM{back} exceeds the 12-layer stack"
            ),
            PatternError::BacksideUnavailable => {
                f.write_str("backside signal routing is not available in this technology")
            }
        }
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(RoutingPattern::new(12, 12).unwrap().to_string(), "FM12BM12");
        assert_eq!(RoutingPattern::new(12, 0).unwrap().to_string(), "FM12BM0");
        assert_eq!(RoutingPattern::new(6, 6).unwrap().to_string(), "FM6BM6");
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(RoutingPattern::new(0, 4), Err(PatternError::NoFrontLayers));
        assert!(matches!(
            RoutingPattern::new(13, 0),
            Err(PatternError::TooManyLayers { .. })
        ));
    }

    #[test]
    fn fixed_matches_new_on_legal_input_and_clamps_illegal() {
        assert_eq!(
            RoutingPattern::fixed(8, 4),
            RoutingPattern::new(8, 4).unwrap()
        );
        assert_eq!(
            RoutingPattern::fixed(12, 0),
            RoutingPattern::max_single_sided()
        );
        // Release-mode clamping (debug builds assert instead).
        if !cfg!(debug_assertions) {
            assert_eq!(RoutingPattern::fixed(0, 13), RoutingPattern::fixed(1, 12));
        }
    }

    #[test]
    fn with_total_enumerates_table3_space() {
        let pats = RoutingPattern::with_total(12);
        // FM12BM0 .. FM1BM11 (FM0BM12 is illegal), front-heavy first.
        assert_eq!(pats.len(), 12);
        assert_eq!(pats.first().unwrap().to_string(), "FM12BM0");
        assert_eq!(pats.last().unwrap().to_string(), "FM1BM11");
        assert!(pats.iter().all(|p| p.total_layers() == 12));
    }
}
