//! Demonstrates the paper's Algorithm 1 in isolation: input-pin
//! redistribution, net decomposition into frontside/backside sub-nets,
//! independent routing, and the two-DEF → merged-DEF hand-off to RC
//! extraction.
//!
//! ```text
//! cargo run --release --example dual_sided_routing
//! ```
// Examples are demonstration CLIs: stdout is their output channel.
#![allow(clippy::print_stdout)]

use ffet_cells::Library;
use ffet_lefdef::{merge_defs, write_lef};
use ffet_netlist::NetlistBuilder;
use ffet_pnr::{decompose_nets, floorplan, place, powerplan, route_nets, RoutingGrid};
use ffet_tech::{RoutingPattern, Side, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A library with half the input pins redistributed to the backside —
    // the paper's "modified standard cell LEF".
    let mut library = Library::new(Technology::ffet_3p5t());
    let moved = library.redistribute_input_pins(0.5, 42)?;
    println!(
        "redistributed {moved} input pins to the backside (measured ratio {:.2})",
        library.measured_backside_ratio()
    );
    let lef = write_lef(&library);
    println!(
        "modified LEF: {} lines (pins carry FM0/BM0 sides)\n",
        lef.lines().count()
    );

    // A small design with mixed gate types.
    let mut b = NetlistBuilder::new(&library, "demo");
    let a = b.input("a");
    let c = b.input("b");
    let mut v = b.xor2(a, c);
    let mut w = b.nand2(a, c);
    for _ in 0..30 {
        let t = b.aoi21(v, w, a);
        w = b.nor2(v, w);
        v = t;
    }
    b.output("y", v);
    b.output("z", w);
    let netlist = b.finish();

    // Floorplan, powerplan (Power Tap Cells!), placement.
    let pattern = RoutingPattern::new(6, 6)?;
    let fp = floorplan(&netlist, &library, 0.7, 1.0)?;
    let pp = powerplan(&fp, &library, pattern);
    println!(
        "floorplan: die {}×{} nm, {} rows, {} Power Tap Cells",
        fp.die.width(),
        fp.die.height(),
        fp.rows.len(),
        pp.taps.len()
    );
    let pl = place(&netlist, &library, &fp, &pp, 1);

    // Algorithm 1: decompose nets by sink pin side.
    let side_nets = decompose_nets(&netlist, &library, &pl, pattern)?;
    let front = side_nets.iter().filter(|n| n.side == Side::Front).count();
    let back = side_nets.iter().filter(|n| n.side == Side::Back).count();
    println!("decomposition: {front} frontside sub-nets, {back} backside sub-nets");

    // Route both sides independently on the shared congestion grid.
    let mut grid = RoutingGrid::new(library.tech(), fp.die, pattern);
    let routing = route_nets(library.tech(), &mut grid, &side_nets, pattern);
    println!(
        "routing: {:.1} µm total ({:.1} µm backside), {} vias, overflow {:.0}",
        routing.wirelength_nm as f64 / 1e3,
        routing.back_wirelength_nm as f64 / 1e3,
        routing.via_count,
        routing.overflow_tracks
    );

    // Export one DEF per side and merge them for extraction.
    let (front_def, back_def) = ffet_pnr::export_defs(&netlist, &library, &fp, &pp, &pl, &routing);
    let merged = merge_defs(&front_def, &back_def)?;
    println!(
        "DEFs: front {} nets, back {} nets → merged {} nets, {:.1} µm wire",
        front_def.nets.len(),
        back_def.nets.len(),
        merged.nets.len(),
        merged.total_wirelength() as f64 / 1e3
    );
    Ok(())
}
