//! Mini design-space exploration in the style of the paper's Table III:
//! sweep the backside input-pin density and the front/back routing-layer
//! split under a fixed 12-layer budget, and rank the configurations.
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! Uses the real RV32 core at a reduced DoE set so it finishes in well
//! under a minute; `repro table3` in `ffet-bench` runs the paper's full
//! 13-row version.
// Examples are demonstration CLIs: stdout is their output channel.
#![allow(clippy::print_stdout)]

use ffet_core::{designs, pct_diff, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_cfg = FlowConfig {
        utilization: 0.72,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = base_cfg.build_library().expect("valid config");
    let netlist = designs::rv32_core(&library);
    let baseline = run_flow(&netlist, &library, &base_cfg)?.report;
    println!(
        "baseline FFET FM12 single-sided: {:.3} GHz, {:.3} mW\n",
        baseline.achieved_freq_ghz, baseline.power_mw
    );

    println!("{:22} {:>10} {:>10} {:>6}", "DoE", "Δfreq", "Δpower", "DRV");
    let mut best: Option<(String, f64)> = None;
    for bp in [0.16, 0.4, 0.5] {
        for (fm, bm) in [(10u8, 2u8), (6, 6)] {
            let config = FlowConfig {
                pattern: RoutingPattern::new(fm, bm)?,
                back_pin_ratio: bp,
                ..base_cfg.clone()
            };
            let library = config.build_library().expect("valid config");
            let outcome = run_flow(&netlist, &library, &config)?;
            let r = outcome.report;
            let df = pct_diff(r.achieved_freq_ghz, baseline.achieved_freq_ghz);
            let dp = pct_diff(r.power_mw, baseline.power_mw);
            let label = format!("FP{:.2}BP{bp:.2} FM{fm}BM{bm}", 1.0 - bp);
            println!("{label:22} {df:>+9.1}% {dp:>+9.1}% {:>6}", r.drv);
            // The paper's figure of merit: frequency gain without power
            // degradation — on a *valid* implementation.
            if r.valid && dp <= 0.5 && best.as_ref().is_none_or(|(_, f)| df > *f) {
                best = Some((label, df));
            }
        }
    }
    if let Some((label, df)) = best {
        println!("\nbest Δfreq without power degradation: {label} ({df:+.1}%)");
        println!("(paper: FP0.5BP0.5 FM6BM6, +10.6%)");
    }
    Ok(())
}
