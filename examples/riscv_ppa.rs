//! The paper's headline comparison on the real benchmark: implements the
//! gate-level RV32I core in 4T CFET and in 3.5T FFET (single- and
//! dual-sided) and prints the block-level PPA side by side.
//!
//! ```text
//! cargo run --release --example riscv_ppa
//! ```
//!
//! The RV32I core is generated from scratch and verified by cosimulation
//! against a reference ISS before the physical flow runs, so the PPA below
//! belongs to a provably working processor.
// Examples are demonstration CLIs: stdout is their output channel.
#![allow(clippy::print_stdout)]

use ffet_core::{designs, pct_diff, run_flow, FlowConfig};
use ffet_rv32::{build_core, cosimulate, programs};
use ffet_tech::{RoutingPattern, TechKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Prove the benchmark core actually works before measuring its PPA.
    let check_lib = FlowConfig::baseline(TechKind::Ffet3p5t)
        .build_library()
        .expect("valid config");
    let core = build_core(&check_lib, "rv32_core");
    let report = cosimulate(&core, &check_lib, &programs::fibonacci(12), 3_000)?;
    println!(
        "cosimulation: fibonacci(12) retired {} instructions — core is functional\n",
        report.retired
    );

    let configs = [
        (
            "4T CFET, FM12",
            FlowConfig {
                utilization: 0.76,
                ..FlowConfig::baseline(TechKind::Cfet4t)
            },
        ),
        (
            "3.5T FFET, FM12 (single-sided)",
            FlowConfig {
                utilization: 0.76,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
        (
            "3.5T FFET, FM6BM6 FP0.5BP0.5",
            FlowConfig {
                utilization: 0.76,
                pattern: RoutingPattern::new(6, 6)?,
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ];

    let mut results = Vec::new();
    println!(
        "{:34} {:>9} {:>9} {:>9} {:>6}",
        "config", "area µm²", "freq GHz", "power mW", "DRV"
    );
    for (label, config) in configs {
        let library = config.build_library().expect("valid config");
        let netlist = designs::rv32_core(&library);
        let outcome = run_flow(&netlist, &library, &config)?;
        let r = outcome.report;
        println!(
            "{label:34} {:>9.1} {:>9.3} {:>9.3} {:>6}",
            r.core_area_um2, r.achieved_freq_ghz, r.power_mw, r.drv
        );
        results.push((label, r));
    }

    let cfet = &results[0].1;
    let ffet = &results[1].1;
    let dual = &results[2].1;
    println!("\nFFET single-sided vs CFET at the same utilization:");
    println!(
        "  core area {:+.1}% (paper: −23.3%)",
        pct_diff(ffet.core_area_um2, cfet.core_area_um2)
    );
    println!(
        "  frequency {:+.1}% (paper: +25.0%)",
        pct_diff(ffet.achieved_freq_ghz, cfet.achieved_freq_ghz)
    );
    println!(
        "  power     {:+.1}% (paper: −11.9%)",
        pct_diff(ffet.power_mw, cfet.power_mw)
    );
    println!("\nFFET dual-sided (FM6BM6) vs FFET single-sided (FM12):");
    println!(
        "  frequency {:+.1}% (paper: +10.6%)",
        pct_diff(dual.achieved_freq_ghz, ffet.achieved_freq_ghz)
    );
    println!(
        "  power     {:+.1}% (paper: −1.4%)",
        pct_diff(dual.power_mw, ffet.power_mw)
    );
    if !dual.valid {
        println!(
            "  note: {} DRVs at 76% utilization — this framework's router runs out of \
             backside capacity earlier than the paper's; rerun at 0.70 for a clean layout",
            dual.drv
        );
    }
    Ok(())
}
