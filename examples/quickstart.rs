//! Quickstart: run the complete FFET evaluation flow on a small design.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a counter pipeline, implements it in the 3.5T FFET with
//! dual-sided signal routing (FM6BM6, half the input pins on the wafer
//! backside), and prints the post-route PPA report.
// Examples are demonstration CLIs: stdout is their output channel.
#![allow(clippy::print_stdout)]

use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a technology and a dual-sided routing configuration.
    let config = FlowConfig {
        pattern: RoutingPattern::new(6, 6)?, // FM6BM6
        back_pin_ratio: 0.5,                 // FP0.5 BP0.5
        utilization: 0.70,
        target_freq_ghz: 1.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };

    // 2. Build the library (characterized cells, redistributed pins) and
    //    the benchmark netlist.
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    println!(
        "design `{}`: {} instances, {} nets",
        netlist.name(),
        netlist.instances().len(),
        netlist.nets().len()
    );

    // 3. Run synthesis-lite → P&R → DEF merge → RC extraction → STA.
    let outcome = run_flow(&netlist, &library, &config)?;
    let r = &outcome.report;

    println!("{}", r.summary());
    println!("  core area      : {:.1} µm²", r.core_area_um2);
    println!("  achieved freq  : {:.3} GHz", r.achieved_freq_ghz);
    println!("  total power    : {:.3} mW", r.power_mw);
    println!(
        "  wirelength     : {:.3} mm ({:.3} mm on the backside)",
        r.wirelength_mm, r.back_wirelength_mm
    );
    println!(
        "  DRVs           : {} → {}",
        r.drv,
        if r.valid { "VALID" } else { "INVALID" }
    );

    // 4. The merged dual-sided DEF is a regular artifact you can write out.
    let def_text = ffet_lefdef::write_def(&outcome.merged_def);
    println!("  merged DEF     : {} lines", def_text.lines().count());
    Ok(())
}
